package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"tatooine/internal/doc"
	"tatooine/internal/fulltext"
	"tatooine/internal/rdf"
	"tatooine/internal/relstore"
	"tatooine/internal/source"
	"tatooine/internal/value"
)

// fixtureInstance builds a mixed instance mirroring Figure 1: a custom
// politics RDF graph G, a Solr-like tweet source, and INSEE-like
// relational sources, one of which lists the URIs of further sources
// (for dynamic discovery).
func fixtureInstance(t testing.TB) *Instance {
	g := rdf.NewGraph()
	g.AddAll(rdf.MustParse(`
@prefix : <http://t.example/> .
@prefix pol: <http://t.example/pol/> .
pol:POL01140 a :politician ;
  :position :headOfState ;
  foaf:name "François Hollande" ;
  :twitterAccount "fhollande" ;
  :facebookAccount "fb.hollande" ;
  :memberOf :PS .
pol:POL02 a :politician ;
  :position :deputy ;
  foaf:name "Jean Dupont" ;
  :twitterAccount "jdupont" ;
  :facebookAccount "fb.dupont" ;
  :memberOf :LR .
pol:POL03 a :politician ;
  :position :senator ;
  foaf:name "Anne Martin" ;
  :twitterAccount "amartin" ;
  :memberOf :PS .
:PS :currentOf :left .
:LR :currentOf :right .
:politician rdfs:subClassOf :person .
`))
	in := NewInstance(g, WithPrefixes(map[string]string{
		"":    "http://t.example/",
		"pol": "http://t.example/pol/",
	}))

	// Tweets.
	ix := fulltext.NewIndex("tweets", fulltext.Schema{
		"text":              fulltext.TextField,
		"user.screen_name":  fulltext.KeywordField,
		"entities.hashtags": fulltext.KeywordField,
		"retweet_count":     fulltext.NumericField,
		"created_at":        fulltext.TimeField,
	})
	addTweet := func(id, author, text string, tags []string, rt int) {
		d := &doc.Document{ID: id}
		d.Set("text", text)
		d.Set("user.screen_name", author)
		d.Set("retweet_count", rt)
		d.Set("created_at", "2016-03-01T10:00:00Z")
		anyTags := make([]any, len(tags))
		for i, h := range tags {
			anyTags[i] = h
		}
		d.Set("entities.hashtags", anyTags)
		if err := ix.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	addTweet("t1", "fhollande", "solidarité nationale au salon #SIA2016", []string{"SIA2016"}, 469)
	addTweet("t2", "jdupont", "les agriculteurs au salon #SIA2016", []string{"SIA2016"}, 12)
	addTweet("t3", "amartin", "état d'urgence au parlement", []string{"EtatDurgence"}, 88)
	addTweet("t4", "fhollande", "chômage en baisse", []string{"economie"}, 120)
	addTweet("t5", "jdupont", "le chômage explose #economie", []string{"economie"}, 30)
	if err := in.AddSource(source.NewDocSource("solr://tweets", ix)); err != nil {
		t.Fatal(err)
	}

	// INSEE-like relational source; the endpoints table lists further
	// source URIs for dynamic discovery.
	insee := relstore.NewDatabase("insee")
	for _, q := range []string{
		"CREATE TABLE chomage (dept TEXT, year INT, taux FLOAT)",
		"INSERT INTO chomage VALUES ('75', 2015, 8.4), ('75', 2016, 8.1), ('92', 2016, 7.2)",
		"CREATE TABLE endpoints (region TEXT, uri TEXT)",
		"INSERT INTO endpoints VALUES ('idf', 'sql://region-idf'), ('bretagne', 'sql://region-bzh')",
	} {
		if _, err := insee.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.AddSource(source.NewRelSource("sql://insee", insee)); err != nil {
		t.Fatal(err)
	}

	// Two regional databases, discovered through the endpoints table.
	for i, uri := range []string{"sql://region-idf", "sql://region-bzh"} {
		db := relstore.NewDatabase(uri)
		if _, err := db.Exec("CREATE TABLE stats (indicator TEXT, val INT)"); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO stats VALUES ('population', %d)", (i+1)*1000)); err != nil {
			t.Fatal(err)
		}
		if err := in.AddSource(source.NewRelSource(uri, db)); err != nil {
			t.Fatal(err)
		}
	}
	return in
}

// qSIAText is the paper's running query (§2.2): tweets from heads of
// state about #SIA2016.
const qSIAText = `
QUERY qSIA(?t, ?id)
GRAPH { ?x :position :headOfState . ?x :twitterAccount ?id }
FROM <solr://tweets> IN(?id) OUT(?t, ?id)
  { SEARCH tweets WHERE user.screen_name = ? AND entities.hashtags = 'SIA2016' RETURN _id, user.screen_name }
`

func TestQSIAEndToEnd(t *testing.T) {
	in := fixtureInstance(t)
	res, err := in.Query(qSIAText)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("qSIA rows: %+v", res.Rows)
	}
	if res.Rows[0][0].Str() != "t1" || res.Rows[0][1].Str() != "fhollande" {
		t.Errorf("qSIA row: %+v", res.Rows[0])
	}
	if res.Stats.BindJoins != 1 {
		t.Errorf("expected 1 bind join, stats: %+v", res.Stats)
	}
}

func TestAffiliationJoin(t *testing.T) {
	// "for each political affiliation, the tweet authors of that
	// affiliation having used a hashtag, with Facebook accounts" (§1).
	in := fixtureInstance(t)
	res, err := in.Query(`
QUERY q(?name, ?cur, ?fb, ?t)
GRAPH { ?x :memberOf ?p . ?p :currentOf ?cur . ?x foaf:name ?name .
        ?x :twitterAccount ?id . ?x :facebookAccount ?fb }
FROM <solr://tweets> IN(?id) OUT(?t, ?id)
  { SEARCH tweets WHERE user.screen_name = ? AND entities.hashtags = 'economie' RETURN _id, user.screen_name }
ORDER BY ?name
`)
	if err != nil {
		t.Fatal(err)
	}
	// fhollande (left, fb) t4; jdupont (right, fb) t5; amartin has no fb → excluded by graph pattern.
	if len(res.Rows) != 2 {
		t.Fatalf("rows: %+v", res.Rows)
	}
	if res.Rows[0][0].Str() != "François Hollande" || res.Rows[0][1].Str() != "http://t.example/left" {
		t.Errorf("row0: %+v", res.Rows[0])
	}
	if res.Rows[1][2].Str() != "fb.dupont" {
		t.Errorf("row1: %+v", res.Rows[1])
	}
}

func TestGraphAndSQLJoin(t *testing.T) {
	in := fixtureInstance(t)
	// Join relational unemployment stats with graph-held politicians via
	// a shared year literal — exercises cross-model hash join.
	res, err := in.Query(`
QUERY q(?dept, ?taux)
FROM <sql://insee> OUT(?dept, ?year, ?taux) { SELECT dept, year, taux FROM chomage WHERE year = 2016 }
ORDER BY ?taux DESC
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][1].Float() != 8.1 {
		t.Errorf("sql rows: %+v", res.Rows)
	}
}

func TestDynamicSourceDiscovery(t *testing.T) {
	// The endpoints table holds source URIs; the second atom ships its
	// sub-query to each discovered source (§2.2).
	in := fixtureInstance(t)
	res, err := in.Query(`
QUERY q(?region, ?src, ?val)
FROM <sql://insee> OUT(?region, ?src) { SELECT region, uri FROM endpoints }
FROM ?src OUT(?ind, ?val) { SELECT indicator, val FROM stats WHERE indicator = 'population' }
ORDER BY ?val
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("dynamic rows: %+v", res.Rows)
	}
	if res.Rows[0][0].Str() != "idf" || res.Rows[0][2].Int() != 1000 {
		t.Errorf("row0: %+v", res.Rows[0])
	}
	if res.Rows[1][0].Str() != "bretagne" || res.Rows[1][2].Int() != 2000 {
		t.Errorf("row1: %+v", res.Rows[1])
	}
	if res.Stats.Dynamic != 2 {
		t.Errorf("dynamic sources contacted: %+v", res.Stats)
	}
}

func TestDynamicSourceUnknownURI(t *testing.T) {
	in := fixtureInstance(t)
	db := relstore.NewDatabase("x")
	db.Exec("CREATE TABLE u (uri TEXT)")
	db.Exec("INSERT INTO u VALUES ('sql://does-not-exist')")
	in.AddSource(source.NewRelSource("sql://broken", db))
	_, err := in.Query(`
QUERY q(?v)
FROM <sql://broken> OUT(?src) { SELECT uri FROM u }
FROM ?src OUT(?v) { SELECT val FROM stats }
`)
	if err == nil || !strings.Contains(err.Error(), "unknown source") {
		t.Errorf("unknown dynamic source: %v", err)
	}
}

func TestPlanWavesAndSelectivity(t *testing.T) {
	in := fixtureInstance(t)
	q := MustParseCMQ(`
QUERY q(?dept, ?taux, ?region)
FROM <sql://insee> OUT(?dept, ?year, ?taux) { SELECT dept, year, taux FROM chomage WHERE year = 2016 }
FROM <sql://insee> OUT(?region, ?src) { SELECT region, uri FROM endpoints }
`)
	plan, err := in.planQuery(context.Background(), q, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumWaves() != 1 {
		t.Errorf("independent atoms should share a wave: %s", plan.Explain(q))
	}
	// Selectivity: endpoints (2 rows) should run before chomage-filtered
	// (estimate 3/10→1)... both cheap; just assert ordering is by estimate.
	if plan.Steps[0].EstCost > plan.Steps[1].EstCost {
		t.Errorf("steps not selectivity-ordered: %s", plan.Explain(q))
	}
}

func TestPlanDependencyOrdering(t *testing.T) {
	in := fixtureInstance(t)
	q := MustParseCMQ(`
QUERY q(?region, ?val)
FROM ?src OUT(?ind, ?val) { SELECT indicator, val FROM stats }
FROM <sql://insee> OUT(?region, ?src) { SELECT region, uri FROM endpoints }
`)
	plan, err := in.planQuery(context.Background(), q, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The dynamic atom (declared first) must be scheduled after the
	// endpoints atom that binds ?src.
	if plan.Steps[0].AtomIndex != 1 || plan.Steps[1].AtomIndex != 0 {
		t.Errorf("dependency ordering: %s", plan.Explain(q))
	}
	if !plan.Steps[1].Dynamic {
		t.Errorf("second step should be dynamic: %s", plan.Explain(q))
	}
}

func TestPlanCircularDependency(t *testing.T) {
	in := fixtureInstance(t)
	q := &CMQ{
		Head: []string{"a"},
		Atoms: []Atom{
			{Kind: SourceAtom, SourceURI: "sql://insee",
				Sub:     source.SubQuery{Language: source.LangSQL, Text: "SELECT dept FROM chomage WHERE dept = ?", InVars: []string{"b"}},
				OutVars: []string{"a"}},
			{Kind: SourceAtom, SourceURI: "sql://insee",
				Sub:     source.SubQuery{Language: source.LangSQL, Text: "SELECT dept FROM chomage WHERE dept = ?", InVars: []string{"a"}},
				OutVars: []string{"b"}},
		},
	}
	if _, err := in.planQuery(context.Background(), q, ExecOptions{}); err == nil || !strings.Contains(err.Error(), "circular") {
		t.Errorf("circular dependency: %v", err)
	}
}

func TestNaiveOrderAblation(t *testing.T) {
	in := fixtureInstance(t)
	q := MustParseCMQ(qSIAText)
	res, err := in.ExecuteOpts(q, ExecOptions{NaiveOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "t1" {
		t.Errorf("naive order result mismatch: %+v", res.Rows)
	}
	if res.Stats.Waves != 2 {
		t.Errorf("naive order should use one wave per atom: %+v", res.Stats)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	in := fixtureInstance(t)
	text := `
QUERY q(?name, ?id, ?t)
GRAPH { ?x foaf:name ?name . ?x :twitterAccount ?id }
FROM <solr://tweets> IN(?id) OUT(?t, ?id)
  { SEARCH tweets WHERE user.screen_name = ? RETURN _id, user.screen_name }
ORDER BY ?t
`
	q := MustParseCMQ(text)
	par, err := in.ExecuteOpts(q, ExecOptions{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := in.ExecuteOpts(MustParseCMQ(text), ExecOptions{Parallel: false})
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Rows) != len(seq.Rows) || len(par.Rows) != 5 {
		t.Fatalf("parallel %d vs sequential %d rows", len(par.Rows), len(seq.Rows))
	}
	for i := range par.Rows {
		for j := range par.Rows[i] {
			if !value.Equal(par.Rows[i][j], seq.Rows[i][j]) {
				t.Errorf("row %d differs: %v vs %v", i, par.Rows[i], seq.Rows[i])
			}
		}
	}
}

func TestDistinctLimitOrder(t *testing.T) {
	in := fixtureInstance(t)
	res, err := in.Query(`
QUERY q(?id)
GRAPH { ?x :twitterAccount ?id }
FROM <solr://tweets> IN(?id) OUT(?t, ?id)
  { SEARCH tweets WHERE user.screen_name = ? RETURN _id, user.screen_name }
DISTINCT
ORDER BY ?id
LIMIT 2
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].Str() != "amartin" || res.Rows[1][0].Str() != "fhollande" {
		t.Errorf("distinct/order/limit: %+v", res.Rows)
	}
}

func TestSaturatedInstanceAnswers(t *testing.T) {
	g := rdf.NewGraph()
	g.AddAll(rdf.MustParse(`
@prefix : <http://t.example/> .
:POL1 a :politician .
:POL1 :twitterAccount "acct1" .
:politician rdfs:subClassOf :person .
`))
	in := NewInstance(g, WithSaturation(), WithPrefixes(map[string]string{"": "http://t.example/"}))
	res, err := in.Query(`
QUERY q(?x)
GRAPH { ?x a :person }
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("saturation answers: %+v", res.Rows)
	}
}

func TestValidationErrors(t *testing.T) {
	in := fixtureInstance(t)
	cases := []string{
		// Head var not produced.
		`QUERY q(?zzz) GRAPH { ?x a :politician }`,
		// Source var never produced.
		`QUERY q(?v) FROM ?nowhere OUT(?v) { SELECT val FROM stats }`,
		// IN var never produced.
		`QUERY q(?t) FROM <solr://tweets> IN(?ghost) OUT(?t) { SEARCH tweets WHERE user.screen_name = ? RETURN _id }`,
		// ORDER BY var not in head.
		`QUERY q(?x) GRAPH { ?x a :politician . ?x :twitterAccount ?id } ORDER BY ?id`,
	}
	for _, text := range cases {
		if _, err := in.Query(text); err == nil {
			t.Errorf("expected validation error for %q", text)
		}
	}
}

func TestUnknownStaticSource(t *testing.T) {
	in := fixtureInstance(t)
	_, err := in.Query(`QUERY q(?v) FROM <sql://nope> OUT(?v) { SELECT val FROM stats }`)
	if err == nil {
		t.Error("unknown static source accepted")
	}
}

func TestCMQStringNotation(t *testing.T) {
	q := MustParseCMQ(qSIAText)
	s := q.String()
	for _, want := range []string{"qSIA(?t, ?id)", "qG{", "[<solr://tweets>]"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}

func TestParseCMQClauses(t *testing.T) {
	q, prefixes, err := ParseCMQ(`
PREFIX ex: <http://ex.org/>
QUERY myq(?a, ?b)
GRAPH { ?a ex:p ?b }
FROM <solr://x> LANG search IN(?b) OUT(?a)
  { SEARCH x WHERE f = ? RETURN _id }
DISTINCT
ORDER BY ?a DESC
LIMIT 7
`)
	if err != nil {
		t.Fatal(err)
	}
	if prefixes["ex"] != "http://ex.org/" {
		t.Errorf("prefixes: %v", prefixes)
	}
	if q.Name != "myq" || len(q.Head) != 2 || !q.Distinct || q.Limit != 7 || q.OrderBy != "a" || !q.OrderDesc {
		t.Errorf("parsed: %+v", q)
	}
	if len(q.Atoms) != 2 || q.Atoms[0].Kind != GraphAtom {
		t.Fatalf("atoms: %+v", q.Atoms)
	}
	if q.Atoms[1].Sub.Language != source.LangSearch || q.Atoms[1].Sub.InVars[0] != "b" {
		t.Errorf("source atom: %+v", q.Atoms[1])
	}
}

func TestParseCMQLanguageInference(t *testing.T) {
	q := MustParseCMQ(`
QUERY q(?a)
FROM <s1> OUT(?a) { SELECT x FROM t }
FROM <s2> OUT(?a) { SEARCH ix WHERE f = 'v' RETURN _id }
FROM <s3> OUT(?a) { q(?a) :- ?a <http://p> ?b }
`)
	wants := []source.Language{source.LangSQL, source.LangSearch, source.LangBGP}
	for i, w := range wants {
		if q.Atoms[i].Sub.Language != w {
			t.Errorf("atom %d language %q, want %q", i, q.Atoms[i].Sub.Language, w)
		}
	}
}

func TestParseCMQErrors(t *testing.T) {
	cases := []string{
		``,
		`GRAPH { ?x a ?y }`,                         // missing QUERY
		`QUERY q(?a GRAPH { ?x a ?y }`,              // malformed head
		`QUERY q(?a) FROM OUT(?a) { SELECT }`,       // FROM without designator
		`QUERY q(?a) GRAPH { ?x a ?y`,               // unterminated block
		`QUERY q(?a) LIMIT xx GRAPH { ?a a ?y }`,    // bad limit
		`QUERY q(?a) QUERY r(?b) GRAPH { ?a a ?b }`, // duplicate QUERY
	}
	for _, text := range cases {
		if _, _, err := ParseCMQ(text); err == nil {
			t.Errorf("expected parse error for %q", text)
		}
	}
}

func TestExplain(t *testing.T) {
	in := fixtureInstance(t)
	q := MustParseCMQ(qSIAText)
	plan, err := in.planQuery(context.Background(), q, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out := plan.Explain(q)
	if !strings.Contains(out, "bind-join(id)") || !strings.Contains(out, "wave 0") {
		t.Errorf("explain: %s", out)
	}
}

func TestRepeatedOutVarsFilter(t *testing.T) {
	// OUT(?a, ?a) requires both result columns equal.
	in := fixtureInstance(t)
	res, err := in.Query(`
QUERY q(?a)
FROM <sql://insee> OUT(?a, ?a) { SELECT dept, dept FROM chomage }
DISTINCT
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 { // 75, 92
		t.Errorf("repeated out vars: %+v", res.Rows)
	}
	res2, err := in.Query(`
QUERY q(?a)
FROM <sql://insee> OUT(?a, ?a) { SELECT dept, year FROM chomage }
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Rows) != 0 { // dept never equals year
		t.Errorf("unequal repeated out vars: %+v", res2.Rows)
	}
}

func TestOptionalFacebookAccounts(t *testing.T) {
	// §1's query with OPTIONAL semantics: authors without a Facebook
	// account still appear, with a NULL account (amartin has none).
	in := fixtureInstance(t)
	res, err := in.Query(`
QUERY q(?name, ?fb, ?t)
GRAPH { ?x foaf:name ?name . ?x :twitterAccount ?id .
        OPTIONAL { ?x :facebookAccount ?fb } }
FROM <solr://tweets> IN(?id) OUT(?t, ?id)
  { SEARCH tweets WHERE user.screen_name = ? AND entities.hashtags = 'EtatDurgence' RETURN _id, user.screen_name }
`)
	if err != nil {
		t.Fatal(err)
	}
	// Only amartin tweeted #EtatDurgence (t3); she has no Facebook.
	if len(res.Rows) != 1 {
		t.Fatalf("rows: %+v", res.Rows)
	}
	if res.Rows[0][0].Str() != "Anne Martin" || !res.Rows[0][1].IsNull() {
		t.Errorf("optional facebook: %+v", res.Rows[0])
	}
}

// TestSaturationConcurrentQueries: a saturated instance shared across
// concurrent queries (the server's usage pattern) must initialize its
// saturation exactly once, race-free.
func TestSaturationConcurrentQueries(t *testing.T) {
	g := rdf.NewGraph()
	g.AddAll(rdf.MustParse(`
@prefix : <http://t.example/> .
:p1 a :politician .
:politician rdfs:subClassOf :person .
`))
	in := NewInstance(g, WithPrefixes(map[string]string{"": "http://t.example/"}), WithSaturation())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := in.Query("QUERY q(?x)\nGRAPH { ?x a :person }")
			if err != nil {
				t.Error(err)
				return
			}
			if len(res.Rows) != 1 {
				t.Errorf("saturated rows: %+v", res.Rows)
			}
		}()
	}
	wg.Wait()
}

// TestCanonicalKeyFieldFraming: free-form fields (which the parser does
// not charset-restrict, so they may contain ':') must be framed
// individually — no two distinct field splits may share a key.
func TestCanonicalKeyFieldFraming(t *testing.T) {
	a := &CMQ{HeadItems: []HeadItem{{Agg: AggCount, Var: "x", Alias: "y:z"}}}
	b := &CMQ{HeadItems: []HeadItem{{Agg: AggCount, Var: "x:y", Alias: "z"}}}
	if a.CanonicalKey() == b.CanonicalKey() {
		t.Error("distinct (Var, Alias) splits collided on one canonical key")
	}
	c := &CMQ{OrderBy: "v:true", OrderDesc: false}
	d := &CMQ{OrderBy: "v", OrderDesc: true}
	if c.CanonicalKey() == d.CanonicalKey() {
		t.Error("OrderBy containing ':' collided with OrderDesc rendering")
	}
}
