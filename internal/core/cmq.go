// Package core implements TATOOINE's primary contribution: Conjunctive
// Mixed Queries (CMQs) over a mixed instance I = (G, D) — an
// application-dependent RDF graph G plus heterogeneous data sources D
// (§2 of the paper). A CMQ
//
//	q(x̄) :- qG(x̄0), q1(x̄1)[d1], …, qn(x̄n)[dn]
//
// conjoins a BGP over G with native sub-queries against sources, where
// each designator dᵢ is a source URI or a variable bound at run time
// (dynamic source discovery). The engine decomposes the query, orders
// sub-queries so that (i) source-designating variables are bound before
// their sources are contacted, (ii) independent sub-queries run in
// parallel, and (iii) the most selective sub-queries run first, then
// joins the sub-results in an iterator-based execution engine (§2.3).
package core

import (
	"fmt"
	"sort"
	"strings"

	"tatooine/internal/rdf"
	"tatooine/internal/source"
	"tatooine/internal/value"
)

// AtomKind discriminates CMQ body atoms.
type AtomKind uint8

const (
	// GraphAtom is a BGP over the instance's custom RDF graph G.
	GraphAtom AtomKind = iota
	// SourceAtom is a native sub-query against a data source.
	SourceAtom
)

// Atom is one conjunct of a CMQ body.
type Atom struct {
	Kind AtomKind

	// Sub is the native sub-query (BGP text for GraphAtom; BGP, SQL or
	// SEARCH for SourceAtom). Sub.InVars lists the CMQ variables whose
	// bound values parameterize the sub-query (bind joins).
	Sub source.SubQuery

	// SourceURI designates the target source (SourceAtom only); empty
	// when SourceVar is used.
	SourceURI string
	// SourceVar names the CMQ variable holding the source URI at run
	// time (dynamic source discovery); empty when SourceURI is used.
	SourceVar string

	// OutVars names the CMQ variables bound by the sub-query's result
	// columns, positionally. For GraphAtoms left empty, the BGP's head
	// variables are used.
	OutVars []string
}

// Designator renders the atom's source designation for display.
func (a Atom) Designator() string {
	switch {
	case a.Kind == GraphAtom:
		return "G"
	case a.SourceVar != "":
		return "?" + a.SourceVar
	default:
		return "<" + a.SourceURI + ">"
	}
}

// CMQ is a conjunctive mixed query.
type CMQ struct {
	// Name is the query name (defaults to "q").
	Name string
	// Head lists the projected variables in output order. When
	// HeadItems is set it takes precedence (aggregated heads).
	Head []string
	// HeadItems optionally extends the head with aggregates
	// (COUNT/SUM/AVG/MIN/MAX over a variable, grouped by GroupBy).
	HeadItems []HeadItem
	// GroupBy lists the grouping variables for aggregated heads.
	GroupBy []string
	// Atoms is the conjunctive body.
	Atoms []Atom
	// Distinct removes duplicate result rows.
	Distinct bool
	// Limit bounds the result (0 = unlimited).
	Limit int
	// OrderBy optionally names a head variable to sort by.
	OrderBy string
	// OrderDesc sorts descending.
	OrderDesc bool
	// Prefixes holds PREFIX declarations local to this query, merged
	// with the instance's prefixes when evaluating graph atoms.
	Prefixes map[string]string
}

// CanonicalKey serializes every semantically significant field of the
// parsed query into an unambiguous string, usable as a cache key:
// queries differing only in insignificant surface syntax (whitespace
// between clauses, comments) parse to the same structure and share a
// key, while any difference that survives parsing — sub-query text
// byte-for-byte, prefixes, modifiers, aggregates — yields a distinct
// key. Every component is length-framed (value.Frame) so no two field
// splits collide.
func (q *CMQ) CanonicalKey() string {
	var b strings.Builder
	frame := func(s string) { value.Frame(&b, s) }
	frame(q.Name)
	for _, v := range q.Head {
		frame("h" + v)
	}
	for _, h := range q.HeadItems {
		frame(fmt.Sprintf("H%d", h.Agg))
		frame(h.Var)
		frame(h.Alias)
	}
	for _, g := range q.GroupBy {
		frame("g" + g)
	}
	for _, a := range q.Atoms {
		frame(fmt.Sprintf("a%d", a.Kind))
		frame(string(a.Sub.Language))
		frame(a.Sub.Text)
		for _, iv := range a.Sub.InVars {
			frame("i" + iv)
		}
		frame("u" + a.SourceURI)
		frame("v" + a.SourceVar)
		for _, ov := range a.OutVars {
			frame("o" + ov)
		}
	}
	// Prefixes in sorted order for determinism.
	names := make([]string, 0, len(q.Prefixes))
	for n := range q.Prefixes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		frame("p" + n)
		frame(q.Prefixes[n])
	}
	frame(fmt.Sprintf("m%v:%d:%v", q.Distinct, q.Limit, q.OrderDesc))
	frame(q.OrderBy)
	return b.String()
}

// outVars returns the atom's effective output variables, deriving them
// from a BGP head when not set explicitly.
func (a Atom) outVars(prefixes map[string]string) ([]string, error) {
	if len(a.OutVars) > 0 {
		return a.OutVars, nil
	}
	if a.Sub.Language == source.LangBGP {
		bgp, err := rdf.ParseBGP(a.Sub.Text, prefixes)
		if err != nil {
			return nil, err
		}
		if len(bgp.Head) > 0 {
			return bgp.Head, nil
		}
		return bgp.AllVars(), nil
	}
	return nil, fmt.Errorf("core: atom %s has no OUT variables", a.Designator())
}

// Validate checks the query's structural rules: head variables must be
// produced by some atom, source designator variables must be produced
// by another atom, and every atom needs a source designation.
func (q *CMQ) Validate(prefixes map[string]string) error {
	if len(q.Atoms) == 0 {
		return fmt.Errorf("core: query has no body atoms")
	}
	produced := make(map[string]struct{})
	for i, a := range q.Atoms {
		if a.Kind == SourceAtom && a.SourceURI == "" && a.SourceVar == "" {
			return fmt.Errorf("core: atom %d has no source designator", i)
		}
		outs, err := a.outVars(prefixes)
		if err != nil {
			return fmt.Errorf("core: atom %d: %w", i, err)
		}
		for _, v := range outs {
			produced[strings.TrimPrefix(v, "?")] = struct{}{}
		}
	}
	for _, v := range q.Head {
		if _, ok := produced[v]; !ok {
			return fmt.Errorf("core: head variable ?%s is not produced by any atom", v)
		}
	}
	for _, it := range q.HeadItems {
		if _, ok := produced[it.Var]; !ok {
			return fmt.Errorf("core: head variable ?%s is not produced by any atom", it.Var)
		}
	}
	for _, v := range q.GroupBy {
		if _, ok := produced[v]; !ok {
			return fmt.Errorf("core: GROUP BY variable ?%s is not produced by any atom", v)
		}
	}
	if len(q.GroupBy) > 0 && len(q.HeadItems) == 0 {
		return fmt.Errorf("core: GROUP BY requires an aggregated head")
	}
	for i, a := range q.Atoms {
		if a.SourceVar != "" {
			if _, ok := produced[a.SourceVar]; !ok {
				return fmt.Errorf("core: atom %d: source variable ?%s is not produced by any atom", i, a.SourceVar)
			}
		}
		for _, in := range a.Sub.InVars {
			if _, ok := produced[strings.TrimPrefix(in, "?")]; !ok {
				return fmt.Errorf("core: atom %d: input variable ?%s is not produced by any atom", i, in)
			}
		}
	}
	if q.OrderBy != "" {
		found := false
		for _, v := range q.Head {
			if v == q.OrderBy {
				found = true
			}
		}
		for _, it := range q.HeadItems {
			if it.Name() == q.OrderBy {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("core: ORDER BY variable ?%s is not in the head", q.OrderBy)
		}
	}
	return nil
}

// String renders the CMQ in the paper's datalog-like notation.
func (q *CMQ) String() string {
	var b strings.Builder
	name := q.Name
	if name == "" {
		name = "q"
	}
	b.WriteString(name + "(")
	for i, v := range q.Head {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString("?" + v)
	}
	b.WriteString(") :- ")
	for i, a := range q.Atoms {
		if i > 0 {
			b.WriteString(", ")
		}
		if a.Kind == GraphAtom {
			b.WriteString("qG{" + strings.TrimSpace(a.Sub.Text) + "}")
			continue
		}
		b.WriteString(string(a.Sub.Language) + "{" + strings.TrimSpace(a.Sub.Text) + "}[" + a.Designator() + "]")
	}
	return b.String()
}
