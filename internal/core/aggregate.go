package core

import (
	"fmt"
	"strings"

	"tatooine/internal/value"
)

// AggKind enumerates mediator-level aggregate functions, used in CMQ
// heads ("find the most prolific tweet authors of that affiliation",
// §1, requires grouping and counting over the joined result).
type AggKind uint8

const (
	AggNone AggKind = iota
	AggCount
	AggCountDistinct
	AggSum
	AggAvg
	AggMin
	AggMax
)

func (k AggKind) String() string {
	switch k {
	case AggNone:
		return ""
	case AggCount:
		return "COUNT"
	case AggCountDistinct:
		return "COUNT DISTINCT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return fmt.Sprintf("AggKind(%d)", uint8(k))
	}
}

// HeadItem is one output column of a CMQ head: a plain variable or an
// aggregate over a variable.
type HeadItem struct {
	// Var is the variable projected or aggregated.
	Var string
	// Agg is AggNone for a plain projection.
	Agg AggKind
	// Alias names the output column (and is addressable in ORDER BY);
	// it defaults to Var or "agg_var".
	Alias string
}

// Name returns the output column name.
func (h HeadItem) Name() string {
	if h.Alias != "" {
		return h.Alias
	}
	if h.Agg == AggNone {
		return h.Var
	}
	return strings.ToLower(strings.ReplaceAll(h.Agg.String(), " ", "_")) + "_" + h.Var
}

func (h HeadItem) String() string {
	s := "?" + h.Var
	if h.Agg == AggCountDistinct {
		s = "COUNT(DISTINCT ?" + h.Var + ")"
	} else if h.Agg != AggNone {
		s = h.Agg.String() + "(?" + h.Var + ")"
	}
	if h.Alias != "" && h.Alias != h.Var {
		s += " AS ?" + h.Alias
	}
	return s
}

// AggregateIterator groups its input by key columns and computes
// aggregate columns, emitting one row per group.
type AggregateIterator struct {
	in      Iterator
	groupBy []string
	items   []HeadItem
	cols    []string
	rows    []value.Row
	pos     int
}

// NewAggregate builds the grouping operator. Output columns follow the
// items' order (group keys must appear among the plain items).
func NewAggregate(in Iterator, groupBy []string, items []HeadItem) *AggregateIterator {
	a := &AggregateIterator{in: in, groupBy: groupBy, items: items}
	for _, it := range items {
		a.cols = append(a.cols, it.Name())
	}
	return a
}

func (a *AggregateIterator) Cols() []string { return a.cols }

type aggState struct {
	count    int
	distinct map[string]struct{}
	sum      float64
	sumInt   int64
	isFloat  bool
	min, max value.Value
	nonNull  int
}

func (a *AggregateIterator) Open() error {
	if err := a.in.Open(); err != nil {
		return err
	}
	inCols := a.in.Cols()
	colPos := func(name string) (int, error) {
		i, ok := indexOf(inCols, name)
		if !ok {
			return 0, fmt.Errorf("core: aggregate input misses column %q (has %v)", name, inCols)
		}
		return i, nil
	}
	keyPos := make([]int, len(a.groupBy))
	for i, g := range a.groupBy {
		p, err := colPos(g)
		if err != nil {
			return err
		}
		keyPos[i] = p
	}
	itemPos := make([]int, len(a.items))
	for i, it := range a.items {
		p, err := colPos(it.Var)
		if err != nil {
			return err
		}
		itemPos[i] = p
	}
	// Validate: plain items must be group keys (or there is no grouping
	// and exactly one global group with only aggregates).
	for _, it := range a.items {
		if it.Agg != AggNone {
			continue
		}
		found := false
		for _, g := range a.groupBy {
			if g == it.Var {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("core: plain head variable ?%s must appear in GROUP BY", it.Var)
		}
	}

	type group struct {
		rep    value.Row
		states []*aggState
	}
	groups := make(map[string]*group)
	var order []string
	newStates := func() []*aggState {
		ss := make([]*aggState, len(a.items))
		for i := range ss {
			ss[i] = &aggState{distinct: make(map[string]struct{})}
		}
		return ss
	}

	for {
		row, ok, err := a.in.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		var key string
		if len(a.groupBy) > 0 {
			parts := make(value.Row, len(keyPos))
			for i, p := range keyPos {
				parts[i] = row[p]
			}
			key = parts.Key()
		}
		g, seen := groups[key]
		if !seen {
			g = &group{rep: row.Clone(), states: newStates()}
			groups[key] = g
			order = append(order, key)
		}
		for i, it := range a.items {
			if it.Agg == AggNone {
				continue
			}
			st := g.states[i]
			v := row[itemPos[i]]
			st.count++
			if v.IsNull() {
				continue
			}
			st.nonNull++
			switch it.Agg {
			case AggCountDistinct:
				st.distinct[v.Key()] = struct{}{}
			case AggSum, AggAvg:
				switch v.Kind() {
				case value.Int:
					st.sumInt += v.Int()
					st.sum += v.Float()
				case value.Float:
					st.isFloat = true
					st.sum += v.Float()
				default:
					return fmt.Errorf("core: %s over non-numeric value %s", it.Agg, v)
				}
			case AggMin:
				if st.min.IsNull() || value.Less(v, st.min) {
					st.min = v
				}
			case AggMax:
				if st.max.IsNull() || value.Less(st.max, v) {
					st.max = v
				}
			}
		}
	}

	a.rows = a.rows[:0]
	for _, key := range order {
		g := groups[key]
		out := make(value.Row, len(a.items))
		for i, it := range a.items {
			st := g.states[i]
			switch it.Agg {
			case AggNone:
				out[i] = g.rep[itemPos[i]]
			case AggCount:
				out[i] = value.NewInt(int64(st.nonNull))
			case AggCountDistinct:
				out[i] = value.NewInt(int64(len(st.distinct)))
			case AggSum:
				if st.nonNull == 0 {
					out[i] = value.NewNull()
				} else if st.isFloat {
					out[i] = value.NewFloat(st.sum)
				} else {
					out[i] = value.NewInt(st.sumInt)
				}
			case AggAvg:
				if st.nonNull == 0 {
					out[i] = value.NewNull()
				} else {
					out[i] = value.NewFloat(st.sum / float64(st.nonNull))
				}
			case AggMin:
				out[i] = st.min
			case AggMax:
				out[i] = st.max
			}
		}
		a.rows = append(a.rows, out)
	}
	a.pos = 0
	return nil
}

func (a *AggregateIterator) Next() (value.Row, bool, error) {
	if a.pos >= len(a.rows) {
		return nil, false, nil
	}
	row := a.rows[a.pos]
	a.pos++
	return row, true, nil
}

func (a *AggregateIterator) Close() error { return a.in.Close() }
