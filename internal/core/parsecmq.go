package core

import (
	"fmt"
	"strconv"
	"strings"

	"tatooine/internal/source"
)

// ParseCMQ parses the textual form of a conjunctive mixed query:
//
//	PREFIX : <http://t.example/>
//	QUERY qSIA(?t, ?id)
//	GRAPH { ?x :position :headOfState . ?x :twitterAccount ?id }
//	FROM <solr://tweets> LANG search IN(?id) OUT(?t, ?id)
//	  { SEARCH tweets WHERE user.screen_name = ? AND entities.hashtags = 'SIA2016' RETURN _id, user.screen_name }
//	ORDER BY ?t DESC
//	LIMIT 100
//	DISTINCT
//
// Clauses:
//   - PREFIX name: <iri>      — prefix declarations for BGP atoms
//   - QUERY name(?v, …)       — head (required, first non-prefix clause)
//   - GRAPH { bgp }           — atom over the custom graph G
//   - FROM <uri>|?var [LANG l] [IN(?v,…)] OUT(?v,…) { text } — source atom;
//     LANG defaults by inference: text starting with SEARCH → search,
//     SELECT → sql, otherwise bgp. OUT is optional for BGP atoms (the
//     BGP head is used).
//   - DISTINCT, ORDER BY ?v [DESC], LIMIT n — result modifiers
func ParseCMQ(text string) (*CMQ, map[string]string, error) {
	p := &cmqParser{input: text}
	return p.parse()
}

// MustParseCMQ panics on parse errors; for tests and fixtures.
func MustParseCMQ(text string) *CMQ {
	q, _, err := ParseCMQ(text)
	if err != nil {
		panic(err)
	}
	return q
}

type cmqParser struct {
	input string
	pos   int
}

func (p *cmqParser) errf(format string, args ...any) error {
	return fmt.Errorf("core: cmq parse at offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *cmqParser) skipWS() {
	for p.pos < len(p.input) {
		c := p.input[p.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			p.pos++
			continue
		}
		if c == '#' {
			for p.pos < len(p.input) && p.input[p.pos] != '\n' {
				p.pos++
			}
			continue
		}
		return
	}
}

func (p *cmqParser) peekWord() string {
	p.skipWS()
	i := p.pos
	for i < len(p.input) {
		c := p.input[i]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '(' || c == '{' || c == '<' || c == '?' {
			break
		}
		i++
	}
	return p.input[p.pos:i]
}

func (p *cmqParser) acceptWord(w string) bool {
	p.skipWS()
	got := p.peekWord()
	if strings.EqualFold(got, w) {
		p.pos += len(got)
		return true
	}
	return false
}

func (p *cmqParser) readUntil(stop byte) (string, error) {
	i := strings.IndexByte(p.input[p.pos:], stop)
	if i < 0 {
		return "", p.errf("expected %q", string(stop))
	}
	out := p.input[p.pos : p.pos+i]
	p.pos += i + 1
	return out, nil
}

// readBlock reads a {...} block with brace balancing (sub-query texts
// never contain braces today, but balancing keeps the syntax robust).
func (p *cmqParser) readBlock() (string, error) {
	p.skipWS()
	if p.pos >= len(p.input) || p.input[p.pos] != '{' {
		return "", p.errf("expected '{'")
	}
	p.pos++
	depth := 1
	start := p.pos
	for p.pos < len(p.input) {
		switch p.input[p.pos] {
		case '{':
			depth++
		case '}':
			depth--
			if depth == 0 {
				out := p.input[start:p.pos]
				p.pos++
				return strings.TrimSpace(out), nil
			}
		case '\'': // skip string literals
			p.pos++
			for p.pos < len(p.input) && p.input[p.pos] != '\'' {
				p.pos++
			}
		case '"':
			p.pos++
			for p.pos < len(p.input) && p.input[p.pos] != '"' {
				if p.input[p.pos] == '\\' {
					p.pos++
				}
				p.pos++
			}
		}
		p.pos++
	}
	return "", p.errf("unterminated '{' block")
}

// parseHead parses the QUERY head: a parenthesized list of plain
// variables and/or aggregates, e.g.
//
//	(?cur, COUNT(?t) AS ?n, COUNT(DISTINCT ?id) AS ?authors)
//
// Plain-only heads populate CMQ.Head; any aggregate switches the whole
// head to CMQ.HeadItems.
func (p *cmqParser) parseHead(q *CMQ) error {
	p.skipWS()
	if p.pos >= len(p.input) || p.input[p.pos] != '(' {
		return p.errf("expected '(' after query name")
	}
	p.pos++
	// Read the balanced head text.
	depth := 1
	start := p.pos
	for p.pos < len(p.input) && depth > 0 {
		switch p.input[p.pos] {
		case '(':
			depth++
		case ')':
			depth--
		}
		p.pos++
	}
	if depth != 0 {
		return p.errf("unterminated query head")
	}
	inner := p.input[start : p.pos-1]

	// Split on top-level commas.
	var entries []string
	d, seg := 0, strings.Builder{}
	for _, r := range inner {
		switch {
		case r == '(':
			d++
			seg.WriteRune(r)
		case r == ')':
			d--
			seg.WriteRune(r)
		case r == ',' && d == 0:
			entries = append(entries, seg.String())
			seg.Reset()
		default:
			seg.WriteRune(r)
		}
	}
	if strings.TrimSpace(seg.String()) != "" {
		entries = append(entries, seg.String())
	}

	var items []HeadItem
	hasAgg := false
	for _, e := range entries {
		item, err := parseHeadEntry(strings.TrimSpace(e))
		if err != nil {
			return p.errf("%v", err)
		}
		if item.Agg != AggNone {
			hasAgg = true
		}
		items = append(items, item)
	}
	if !hasAgg {
		for _, it := range items {
			q.Head = append(q.Head, it.Var)
		}
		return nil
	}
	q.HeadItems = items
	return nil
}

var aggNames = map[string]AggKind{
	"COUNT": AggCount, "SUM": AggSum, "AVG": AggAvg, "MIN": AggMin, "MAX": AggMax,
}

// parseHeadEntry parses "?v", "AGG(?v)", "AGG(DISTINCT ?v)", each with
// an optional "AS ?alias".
func parseHeadEntry(e string) (HeadItem, error) {
	var item HeadItem
	// Optional alias.
	if i := strings.LastIndex(strings.ToUpper(e), " AS "); i >= 0 {
		alias := strings.TrimSpace(e[i+4:])
		alias = strings.TrimPrefix(alias, "?")
		if alias == "" {
			return item, fmt.Errorf("empty alias in head entry %q", e)
		}
		item.Alias = alias
		e = strings.TrimSpace(e[:i])
	}
	if open := strings.IndexByte(e, '('); open >= 0 {
		fn := strings.ToUpper(strings.TrimSpace(e[:open]))
		kind, ok := aggNames[fn]
		if !ok {
			return item, fmt.Errorf("unknown aggregate %q", fn)
		}
		if !strings.HasSuffix(e, ")") {
			return item, fmt.Errorf("malformed aggregate %q", e)
		}
		arg := strings.TrimSpace(e[open+1 : len(e)-1])
		upArg := strings.ToUpper(arg)
		if strings.HasPrefix(upArg, "DISTINCT ") {
			if kind != AggCount {
				return item, fmt.Errorf("DISTINCT only supported with COUNT in %q", e)
			}
			kind = AggCountDistinct
			arg = strings.TrimSpace(arg[len("DISTINCT "):])
		}
		arg = strings.TrimPrefix(arg, "?")
		if arg == "" {
			return item, fmt.Errorf("missing aggregate argument in %q", e)
		}
		item.Agg = kind
		item.Var = arg
		return item, nil
	}
	v := strings.TrimPrefix(e, "?")
	if v == "" {
		return item, fmt.Errorf("empty head entry")
	}
	item.Var = v
	return item, nil
}

// readVarList parses (?a, ?b, ...).
func (p *cmqParser) readVarList() ([]string, error) {
	p.skipWS()
	if p.pos >= len(p.input) || p.input[p.pos] != '(' {
		return nil, p.errf("expected '('")
	}
	p.pos++
	inner, err := p.readUntil(')')
	if err != nil {
		return nil, err
	}
	if strings.TrimSpace(inner) == "" {
		return nil, nil
	}
	var out []string
	for _, part := range strings.Split(inner, ",") {
		v := strings.TrimSpace(part)
		v = strings.TrimPrefix(v, "?")
		if v == "" {
			return nil, p.errf("empty variable in list")
		}
		out = append(out, v)
	}
	return out, nil
}

func (p *cmqParser) parse() (*CMQ, map[string]string, error) {
	q := &CMQ{}
	prefixes := make(map[string]string)
	sawQuery := false
	for {
		p.skipWS()
		if p.pos >= len(p.input) {
			break
		}
		switch {
		case p.acceptWord("PREFIX"):
			p.skipWS()
			name, err := p.readUntil(':')
			if err != nil {
				return nil, nil, err
			}
			name = strings.TrimSpace(name)
			p.skipWS()
			if p.pos >= len(p.input) || p.input[p.pos] != '<' {
				return nil, nil, p.errf("PREFIX expects <iri>")
			}
			p.pos++
			iri, err := p.readUntil('>')
			if err != nil {
				return nil, nil, err
			}
			prefixes[name] = iri
		case p.acceptWord("QUERY"):
			if sawQuery {
				return nil, nil, p.errf("duplicate QUERY clause")
			}
			sawQuery = true
			p.skipWS()
			name := p.peekWord()
			p.pos += len(name)
			q.Name = name
			if err := p.parseHead(q); err != nil {
				return nil, nil, err
			}
		case p.acceptWord("GRAPH"):
			text, err := p.readBlock()
			if err != nil {
				return nil, nil, err
			}
			q.Atoms = append(q.Atoms, Atom{
				Kind: GraphAtom,
				Sub:  source.SubQuery{Language: source.LangBGP, Text: text},
			})
		case p.acceptWord("FROM"):
			atom, err := p.parseFrom()
			if err != nil {
				return nil, nil, err
			}
			q.Atoms = append(q.Atoms, *atom)
		case p.acceptWord("DISTINCT"):
			q.Distinct = true
		case p.acceptWord("GROUP"):
			if !p.acceptWord("BY") {
				return nil, nil, p.errf("expected BY after GROUP")
			}
			for {
				p.skipWS()
				if p.pos < len(p.input) && p.input[p.pos] == '?' {
					p.pos++
				}
				raw := p.peekWord()
				if raw == "" || raw == "," {
					return nil, nil, p.errf("GROUP BY expects variables")
				}
				p.pos += len(raw)
				hadComma := strings.HasSuffix(raw, ",")
				q.GroupBy = append(q.GroupBy, strings.TrimSuffix(raw, ","))
				if hadComma {
					continue
				}
				p.skipWS()
				if p.pos < len(p.input) && p.input[p.pos] == ',' {
					p.pos++
					continue
				}
				break
			}
		case p.acceptWord("ORDER"):
			if !p.acceptWord("BY") {
				return nil, nil, p.errf("expected BY after ORDER")
			}
			p.skipWS()
			if p.pos < len(p.input) && p.input[p.pos] == '?' {
				p.pos++
			}
			v := p.peekWord()
			p.pos += len(v)
			if v == "" {
				return nil, nil, p.errf("ORDER BY expects a variable")
			}
			q.OrderBy = v
			if p.acceptWord("DESC") {
				q.OrderDesc = true
			} else {
				p.acceptWord("ASC")
			}
		case p.acceptWord("LIMIT"):
			p.skipWS()
			w := p.peekWord()
			n, err := strconv.Atoi(w)
			if err != nil || n < 0 {
				return nil, nil, p.errf("bad LIMIT %q", w)
			}
			p.pos += len(w)
			q.Limit = n
		default:
			return nil, nil, p.errf("unexpected input %q", p.peekWord())
		}
	}
	if !sawQuery {
		return nil, nil, p.errf("missing QUERY clause")
	}
	q.Prefixes = prefixes
	return q, prefixes, nil
}

func (p *cmqParser) parseFrom() (*Atom, error) {
	atom := &Atom{Kind: SourceAtom}
	p.skipWS()
	switch {
	case p.pos < len(p.input) && p.input[p.pos] == '<':
		p.pos++
		uri, err := p.readUntil('>')
		if err != nil {
			return nil, err
		}
		atom.SourceURI = uri
	case p.pos < len(p.input) && p.input[p.pos] == '?':
		p.pos++
		v := p.peekWord()
		p.pos += len(v)
		if v == "" {
			return nil, p.errf("FROM ? expects a variable name")
		}
		atom.SourceVar = v
	default:
		return nil, p.errf("FROM expects <uri> or ?variable")
	}

	lang := ""
	for {
		switch {
		case p.acceptWord("LANG"):
			p.skipWS()
			w := p.peekWord()
			p.pos += len(w)
			lang = strings.ToLower(w)
		case p.acceptWord("IN"):
			vars, err := p.readVarList()
			if err != nil {
				return nil, err
			}
			atom.Sub.InVars = vars
		case p.acceptWord("OUT"):
			vars, err := p.readVarList()
			if err != nil {
				return nil, err
			}
			atom.OutVars = vars
		default:
			text, err := p.readBlock()
			if err != nil {
				return nil, err
			}
			atom.Sub.Text = text
			if lang == "" {
				lang = inferLanguage(text)
			}
			atom.Sub.Language = source.Language(lang)
			return atom, nil
		}
	}
}

func inferLanguage(text string) string {
	up := strings.ToUpper(strings.TrimSpace(text))
	switch {
	case strings.HasPrefix(up, "SEARCH"):
		return string(source.LangSearch)
	case strings.HasPrefix(up, "SELECT"):
		return string(source.LangSQL)
	case strings.HasPrefix(up, "XPATH"):
		return string(source.LangXPath)
	default:
		return string(source.LangBGP)
	}
}
