package core

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"path/filepath"
	"strconv"
	"strings"

	"tatooine/internal/rdf"
	"tatooine/internal/reason"
	"tatooine/internal/store"
)

// This file is the durable side of Instance: a persistent instance
// keeps the custom graph G, the materialized saturation G∞, the
// mutation epoch and registered-source metadata in one store.Store
// (paged B-trees + WAL), committing them in a single WAL transaction
// per mutation. A process crash between commits rolls the whole
// catalog back to the last committed mutation — epoch, G and G∞ can
// never diverge from each other — and reopening is a warm start: the
// saturation is adopted as-is instead of recomputed.

// DataFileName is the store file created inside a persistent
// instance's data directory (the WAL lives next to it).
const DataFileName = "tatooine.db"

// Catalog keys (keyspace "cat").
const (
	catEpochKey  = "epoch"  // u64 BE: mutation epoch
	catSatGenKey = "satgen" // u64 BE: live saturation generation (0 = none)
	catSrcPrefix = "src/"   // + uri: JSON SourceMeta
)

// SourceMeta is the durable description of a registered source. Live
// DataSource objects (indexes, databases, HTTP clients) are rebuilt by
// the embedding application on boot; the catalog remembers what was
// registered so a warm start can verify or re-resolve them.
type SourceMeta struct {
	URI   string `json:"uri"`
	Model string `json:"model"`
}

// Open opens (or initializes) a persistent instance rooted at dir. The
// custom graph, its saturation, the epoch and source metadata load
// from dir/tatooine.db; a missing file starts an empty instance.
// Options apply as in NewInstance. With WithSaturation, a stored
// saturation is adopted without recompute (the warm-restart path);
// full-resaturation mode ignores any stored saturation.
func Open(dir string, opts ...InstanceOption) (*Instance, error) {
	// Store options (page-cache budget, auto-vacuum tuning) must be
	// known before the store opens, so probe the option list first.
	probe := &Instance{prefixes: make(map[string]string)}
	for _, o := range opts {
		o(probe)
	}
	st, err := store.Open(filepath.Join(dir, DataFileName), probe.storeOpts)
	if err != nil {
		return nil, err
	}
	in, err := openWithStore(st, opts...)
	if err != nil {
		st.Close()
		return nil, err
	}
	return in, nil
}

func openWithStore(st store.Store, opts ...InstanceOption) (*Instance, error) {
	cat, err := st.Keyspace("cat")
	if err != nil {
		return nil, err
	}
	g, err := rdf.OpenGraph(st, "g")
	if err != nil {
		return nil, err
	}
	in := NewInstance(g, opts...)
	in.st = st
	in.cat = cat

	if v, ok, err := catGet(cat, catEpochKey); err != nil {
		return nil, err
	} else if ok {
		in.epoch.Store(v)
	}
	if v, ok, err := catGet(cat, catSatGenKey); err != nil {
		return nil, err
	} else if ok {
		in.satGen = v
	}
	if err := in.dropStaleSatLocked(); err != nil {
		return nil, err
	}

	// Warm-start the reasoner: a stored saturation generation means G∞
	// was committed consistent with G and the epoch, so adopt it as-is.
	// Generations share the base graph's dictionary (their triples are
	// keyed by its TermIDs), so no second dictionary load happens here.
	if in.saturate && !in.fullSat && in.satGen > 0 {
		sat, err := rdf.OpenGraphSharedDict(st, satPrefix(in.satGen), g)
		if err != nil {
			return nil, err
		}
		in.engine = reason.Adopt(g, sat, reason.Config{SatFactory: in.satFactory})
	}
	return in, nil
}

func catGet(cat store.KV, key string) (uint64, bool, error) {
	v, ok, err := cat.Get([]byte(key))
	if err != nil || !ok {
		return 0, false, err
	}
	if len(v) != 8 {
		return 0, false, fmt.Errorf("core: catalog key %q: malformed value", key)
	}
	return binary.BigEndian.Uint64(v), true, nil
}

func satPrefix(gen uint64) string { return fmt.Sprintf("sat%d", gen) }

// satFactory hands the reasoner a fresh store-backed graph for each
// full rebuild. Generations are numbered so readers holding the
// previous G∞ keep a valid snapshot: queryGraph hands out graph
// pointers that outlive satMu, so the generation superseded by THIS
// rebuild cannot have its pages freed yet — a long query could still
// be iterating it. Instead it is parked in pendingSatDrop and dropped
// (pages returned to the pager free list) at the NEXT full rebuild,
// by which point any reader of the parked generation would have had
// to span two complete rebuilds. Boot drops stragglers (see
// dropStaleSatLocked). Errors degrade to an in-memory saturation:
// answers stay correct, persistence of G∞ resumes at the next
// successful rebuild. Called with satMu held (all engine entry points
// take it).
func (in *Instance) satFactory() *rdf.Graph {
	old := in.satGen
	gen := old + 1
	g, err := rdf.OpenGraphSharedDict(in.st, satPrefix(gen), in.graph)
	if err != nil {
		in.noteStoreErrLocked(err)
		return rdf.NewGraph()
	}
	in.satGen = gen
	if in.pendingSatDrop > 0 {
		in.dropSatGenLocked(in.pendingSatDrop)
	}
	in.pendingSatDrop = old
	return g
}

// dropSatGenLocked removes a saturation generation's keyspaces,
// returning their pages to the pager free list.
func (in *Instance) dropSatGenLocked(gen uint64) {
	for _, ks := range []string{"/spo", "/pos", "/osp"} {
		if err := in.st.DropKeyspace(satPrefix(gen) + ks); err != nil {
			in.noteStoreErrLocked(err)
		}
	}
}

// dropStaleSatLocked reclaims saturation generations other than the
// live one at boot — generations parked by satFactory in a previous
// process, or left by a crash mid-rebuild. No queries exist yet, so
// freeing is safe.
func (in *Instance) dropStaleSatLocked() error {
	live := satPrefix(in.satGen)
	for _, name := range in.st.Keyspaces() {
		if !strings.HasPrefix(name, "sat") {
			continue
		}
		slash := strings.IndexByte(name, '/')
		if slash < 0 || name[:slash] == live {
			continue
		}
		if _, err := strconv.ParseUint(name[3:slash], 10, 64); err != nil {
			continue
		}
		if err := in.st.DropKeyspace(name); err != nil {
			return err
		}
	}
	return nil
}

// persistLocked writes the epoch and saturation generation to the
// catalog and commits the store — one WAL transaction covering every
// page the mutation dirtied (graph indexes, dictionary, saturation,
// catalog, and any other keyspace on the same store). Callers hold
// satMu. Errors are sticky (StoreErr) rather than returned: the
// in-memory state is already mutated and correct, so the instance
// keeps serving; only durability is degraded.
func (in *Instance) persistLocked() {
	if in.st == nil {
		return
	}
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], in.epoch.Load())
	if _, err := in.cat.Put([]byte(catEpochKey), b[:]); err != nil {
		in.noteStoreErrLocked(err)
		return
	}
	binary.BigEndian.PutUint64(b[:], in.satGen)
	if _, err := in.cat.Put([]byte(catSatGenKey), b[:]); err != nil {
		in.noteStoreErrLocked(err)
		return
	}
	if err := in.graph.StoreErr(); err != nil {
		in.noteStoreErrLocked(err)
		return
	}
	if err := in.st.Commit(); err != nil {
		in.noteStoreErrLocked(err)
	}
}

func (in *Instance) noteStoreErrLocked(err error) {
	if in.stErr == nil {
		in.stErr = err
	}
}

// StoreErr returns the first storage error a persistent instance has
// encountered (failed commit, failed write-through), or nil. In-memory
// instances always return nil.
func (in *Instance) StoreErr() error {
	in.satMu.Lock()
	defer in.satMu.Unlock()
	return in.stErr
}

// Persistent reports whether the instance is backed by a store.
func (in *Instance) Persistent() bool { return in.st != nil }

// Store exposes the instance's backing store so the embedding
// application can co-locate more state (e.g. relstore databases) in
// the same WAL transactions. Nil for in-memory instances.
func (in *Instance) Store() store.Store { return in.st }

// StoreStats snapshots the backing store's counters (the /stats
// "store" block). Nil for in-memory instances.
func (in *Instance) StoreStats() *store.Stats {
	if in.st == nil {
		return nil
	}
	s := in.st.Stats()
	return &s
}

// Checkpoint commits pending state and folds the WAL into the main
// file. Useful before backups and called by Close.
func (in *Instance) Checkpoint() error {
	if in.st == nil {
		return nil
	}
	in.satMu.Lock()
	defer in.satMu.Unlock()
	in.persistLocked()
	if in.stErr != nil {
		return in.stErr
	}
	return in.st.Checkpoint()
}

// Close commits and checkpoints a persistent instance, then closes the
// store. In-memory instances are a no-op. The instance must not be
// used afterwards.
func (in *Instance) Close() error {
	if in.st == nil {
		return nil
	}
	in.satMu.Lock()
	in.persistLocked()
	err := in.stErr
	in.satMu.Unlock()
	if cerr := in.st.Close(); err == nil {
		err = cerr
	}
	return err
}

// persistSourceLocked records (or clears) a source's catalog metadata.
func (in *Instance) persistSourceLocked(uri, model string, drop bool) {
	if in.st == nil {
		return
	}
	key := []byte(catSrcPrefix + uri)
	if drop {
		if _, err := in.cat.Delete(key); err != nil {
			in.noteStoreErrLocked(err)
		}
		return
	}
	buf, err := json.Marshal(SourceMeta{URI: uri, Model: model})
	if err != nil {
		in.noteStoreErrLocked(err)
		return
	}
	if _, err := in.cat.Put(key, buf); err != nil {
		in.noteStoreErrLocked(err)
	}
}

// PersistedSources lists the source metadata stored in the catalog, in
// URI order. Empty for in-memory instances.
func (in *Instance) PersistedSources() ([]SourceMeta, error) {
	if in.st == nil {
		return nil, nil
	}
	var out []SourceMeta
	var loadErr error
	err := in.cat.Scan([]byte(catSrcPrefix), func(_, v []byte) bool {
		var m SourceMeta
		if err := json.Unmarshal(v, &m); err != nil {
			loadErr = fmt.Errorf("core: corrupt source metadata: %v", err)
			return false
		}
		out = append(out, m)
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, loadErr
}
