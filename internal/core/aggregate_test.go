package core

import (
	"strings"
	"testing"

	"tatooine/internal/value"
)

func TestAggregateIteratorGrouping(t *testing.T) {
	r := rel([]string{"party", "votes", "t"},
		[]any{"PS", 10, "a"}, []any{"PS", 20, "b"}, []any{"LR", 5, "c"},
		[]any{"LR", 5, "c"}, []any{"PS", 30, "d"})
	items := []HeadItem{
		{Var: "party"},
		{Var: "t", Agg: AggCount, Alias: "n"},
		{Var: "t", Agg: AggCountDistinct, Alias: "dn"},
		{Var: "votes", Agg: AggSum, Alias: "sum"},
		{Var: "votes", Agg: AggAvg, Alias: "avg"},
		{Var: "votes", Agg: AggMin, Alias: "lo"},
		{Var: "votes", Agg: AggMax, Alias: "hi"},
	}
	got, err := Materialize(NewAggregate(NewScan(r), []string{"party"}, items))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 2 {
		t.Fatalf("groups: %+v", got.Rows)
	}
	byParty := map[string]value.Row{}
	for _, row := range got.Rows {
		byParty[row[0].Str()] = row
	}
	ps := byParty["PS"]
	if ps[1].Int() != 3 || ps[2].Int() != 3 || ps[3].Int() != 60 || ps[4].Float() != 20 ||
		ps[5].Int() != 10 || ps[6].Int() != 30 {
		t.Errorf("PS aggregates: %+v", ps)
	}
	lr := byParty["LR"]
	if lr[1].Int() != 2 || lr[2].Int() != 1 || lr[3].Int() != 10 {
		t.Errorf("LR aggregates: %+v", lr)
	}
	if got.Cols[1] != "n" || got.Cols[3] != "sum" {
		t.Errorf("cols: %v", got.Cols)
	}
}

func TestAggregateGlobalGroup(t *testing.T) {
	r := rel([]string{"v"}, []any{1}, []any{2}, []any{3})
	got, err := Materialize(NewAggregate(NewScan(r), nil, []HeadItem{
		{Var: "v", Agg: AggCount, Alias: "n"},
		{Var: "v", Agg: AggSum, Alias: "s"},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 1 || got.Rows[0][0].Int() != 3 || got.Rows[0][1].Int() != 6 {
		t.Errorf("global group: %+v", got.Rows)
	}
}

func TestAggregateNullHandling(t *testing.T) {
	r := rel([]string{"g", "v"}, []any{"a", 1}, []any{"a", nil}, []any{"a", 3})
	got, err := Materialize(NewAggregate(NewScan(r), []string{"g"}, []HeadItem{
		{Var: "g"},
		{Var: "v", Agg: AggCount, Alias: "n"},
		{Var: "v", Agg: AggAvg, Alias: "avg"},
	}))
	if err != nil {
		t.Fatal(err)
	}
	// COUNT and AVG skip nulls.
	if got.Rows[0][1].Int() != 2 || got.Rows[0][2].Float() != 2 {
		t.Errorf("null handling: %+v", got.Rows[0])
	}
}

func TestAggregatePlainVarMustBeGrouped(t *testing.T) {
	r := rel([]string{"a", "b"}, []any{"x", 1})
	_, err := Materialize(NewAggregate(NewScan(r), []string{"a"}, []HeadItem{
		{Var: "b"}, // not in GROUP BY
		{Var: "a", Agg: AggCount},
	}))
	if err == nil {
		t.Error("ungrouped plain variable accepted")
	}
}

func TestAggregateSumNonNumericFails(t *testing.T) {
	r := rel([]string{"v"}, []any{"text"})
	_, err := Materialize(NewAggregate(NewScan(r), nil, []HeadItem{
		{Var: "v", Agg: AggSum},
	}))
	if err == nil {
		t.Error("SUM over strings accepted")
	}
}

// TestMostProlificAuthors reproduces the paper's §1 motivating query:
// "for a given hashtag and each political affiliation, find the most
// prolific tweet authors of that affiliation having used that hashtag,
// and their Facebook accounts."
func TestMostProlificAuthors(t *testing.T) {
	in := fixtureInstance(t)
	res, err := in.Query(`
QUERY prolific(?cur, ?id, ?fb, COUNT(?t) AS ?n)
GRAPH { ?x :memberOf ?p . ?p :currentOf ?cur .
        ?x :twitterAccount ?id . ?x :facebookAccount ?fb }
FROM <solr://tweets> IN(?id) OUT(?t, ?id)
  { SEARCH tweets WHERE user.screen_name = ? AND entities.hashtags = 'economie' RETURN _id, user.screen_name }
GROUP BY ?cur, ?id, ?fb
ORDER BY ?n DESC
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cols) != 4 || res.Cols[3] != "n" {
		t.Fatalf("cols: %v", res.Cols)
	}
	// fhollande has 1 economie tweet (t4), jdupont 1 (t5); amartin has
	// no facebook account so is excluded.
	if len(res.Rows) != 2 {
		t.Fatalf("rows: %+v", res.Rows)
	}
	for _, row := range res.Rows {
		if row[3].Int() != 1 {
			t.Errorf("count: %+v", row)
		}
		if row[2].IsNull() {
			t.Errorf("facebook account missing: %+v", row)
		}
	}
}

func TestParseAggregateHead(t *testing.T) {
	q := MustParseCMQ(`
QUERY q(?cur, COUNT(?t) AS ?n, COUNT(DISTINCT ?id) AS ?authors, SUM(?rt) AS ?rts)
GRAPH { ?x :p ?cur . ?x :q ?t . ?x :r ?id . ?x :s ?rt }
GROUP BY ?cur
ORDER BY ?n DESC
`)
	if len(q.HeadItems) != 4 {
		t.Fatalf("items: %+v", q.HeadItems)
	}
	if q.HeadItems[0].Agg != AggNone || q.HeadItems[0].Var != "cur" {
		t.Errorf("item0: %+v", q.HeadItems[0])
	}
	if q.HeadItems[1].Agg != AggCount || q.HeadItems[1].Alias != "n" {
		t.Errorf("item1: %+v", q.HeadItems[1])
	}
	if q.HeadItems[2].Agg != AggCountDistinct || q.HeadItems[2].Var != "id" {
		t.Errorf("item2: %+v", q.HeadItems[2])
	}
	if q.HeadItems[3].Agg != AggSum {
		t.Errorf("item3: %+v", q.HeadItems[3])
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0] != "cur" {
		t.Errorf("groupBy: %v", q.GroupBy)
	}
	if q.OrderBy != "n" || !q.OrderDesc {
		t.Errorf("order: %v %v", q.OrderBy, q.OrderDesc)
	}
}

func TestParseAggregateErrors(t *testing.T) {
	cases := []string{
		`QUERY q(MEDIAN(?x)) GRAPH { ?a :p ?x }`,                   // unknown aggregate
		`QUERY q(SUM(DISTINCT ?x)) GRAPH { ?a :p ?x }`,             // DISTINCT non-COUNT
		`QUERY q(COUNT(?x) AS ) GRAPH { ?a :p ?x }`,                // empty alias
		`QUERY q(?a) GROUP BY ?a GRAPH { ?a :p ?x }`,               // GROUP BY without aggregate
		`QUERY q(COUNT(?zz) AS ?n) GRAPH { ?a :p ?x }`,             // agg var not produced
		`QUERY q(COUNT(?x) AS ?n) GROUP BY ?zz GRAPH { ?a :p ?x }`, // group var not produced
	}
	for _, text := range cases {
		q, _, err := ParseCMQ(text)
		if err == nil {
			err = q.Validate(nil)
		}
		if err == nil {
			t.Errorf("expected error for %q", text)
		}
	}
}

func TestAggregateHeadStringRendering(t *testing.T) {
	items := []HeadItem{
		{Var: "cur"},
		{Var: "t", Agg: AggCount, Alias: "n"},
		{Var: "id", Agg: AggCountDistinct},
	}
	strs := []string{"?cur", "COUNT(?t) AS ?n", "COUNT(DISTINCT ?id)"}
	for i, it := range items {
		if it.String() != strs[i] {
			t.Errorf("String: %q want %q", it.String(), strs[i])
		}
	}
	if items[2].Name() != "count_distinct_id" {
		t.Errorf("default name: %q", items[2].Name())
	}
}

func TestOrderByAggregateAlias(t *testing.T) {
	in := fixtureInstance(t)
	res, err := in.Query(`
QUERY q(?id, COUNT(?t) AS ?n)
GRAPH { ?x :twitterAccount ?id }
FROM <solr://tweets> IN(?id) OUT(?t, ?id)
  { SEARCH tweets WHERE user.screen_name = ? RETURN _id, user.screen_name }
GROUP BY ?id
ORDER BY ?n DESC
LIMIT 1
`)
	if err != nil {
		t.Fatal(err)
	}
	// fhollande and jdupont both have 2 tweets; amartin 1. Top must
	// have count 2.
	if len(res.Rows) != 1 || res.Rows[0][1].Int() != 2 {
		t.Errorf("top author: %+v", res.Rows)
	}
	if !strings.Contains(res.Cols[1], "n") {
		t.Errorf("cols: %v", res.Cols)
	}
}
