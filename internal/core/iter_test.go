package core

import (
	"errors"
	"strings"
	"testing"

	"tatooine/internal/value"
)

func rel(cols []string, rows ...[]any) *Relation {
	r := &Relation{Cols: cols}
	for _, raw := range rows {
		row := make(value.Row, len(raw))
		for i, v := range raw {
			switch x := v.(type) {
			case string:
				row[i] = value.NewString(x)
			case int:
				row[i] = value.NewInt(int64(x))
			case float64:
				row[i] = value.NewFloat(x)
			case nil:
				row[i] = value.NewNull()
			default:
				t := value.NewString("?")
				row[i] = t
			}
		}
		r.Rows = append(r.Rows, row)
	}
	return r
}

func TestScanAndMaterialize(t *testing.T) {
	r := rel([]string{"a", "b"}, []any{"x", 1}, []any{"y", 2})
	got, err := Materialize(NewScan(r))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 2 || got.Cols[1] != "b" {
		t.Errorf("materialize: %+v", got)
	}
}

func TestHashJoinShared(t *testing.T) {
	left := rel([]string{"id", "name"},
		[]any{"p1", "Hollande"}, []any{"p2", "Dupont"}, []any{"p3", "Martin"})
	right := rel([]string{"id", "party"},
		[]any{"p1", "PS"}, []any{"p2", "LR"}, []any{"p2", "UDI"}, []any{"p9", "X"})
	got, err := Materialize(NewHashJoin(NewScan(left), NewScan(right)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cols) != 3 {
		t.Fatalf("cols: %v", got.Cols)
	}
	if len(got.Rows) != 3 { // p1×1, p2×2
		t.Errorf("rows: %d %v", len(got.Rows), got.Rows)
	}
}

func TestHashJoinMultiColumn(t *testing.T) {
	left := rel([]string{"a", "b", "x"}, []any{"1", "1", "l1"}, []any{"1", "2", "l2"})
	right := rel([]string{"a", "b", "y"}, []any{"1", "1", "r1"}, []any{"2", "2", "r2"})
	got, err := Materialize(NewHashJoin(NewScan(left), NewScan(right)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 1 || got.Rows[0][3].Str() != "r1" {
		t.Errorf("multi-col join: %+v", got.Rows)
	}
}

func TestHashJoinCrossProduct(t *testing.T) {
	left := rel([]string{"a"}, []any{"x"}, []any{"y"})
	right := rel([]string{"b"}, []any{1}, []any{2}, []any{3})
	got, err := Materialize(NewHashJoin(NewScan(left), NewScan(right)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 6 {
		t.Errorf("cross product: %d rows", len(got.Rows))
	}
}

func TestHashJoinNullsNeverJoin(t *testing.T) {
	left := rel([]string{"k", "l"}, []any{nil, "ln"}, []any{"a", "la"})
	right := rel([]string{"k", "r"}, []any{nil, "rn"}, []any{"a", "ra"})
	got, err := Materialize(NewHashJoin(NewScan(left), NewScan(right)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 1 {
		t.Errorf("null join rows: %+v", got.Rows)
	}
}

func TestHashJoinCrossNumericKeys(t *testing.T) {
	left := rel([]string{"k", "l"}, []any{1, "int"})
	right := rel([]string{"k", "r"}, []any{1.0, "float"})
	got, err := Materialize(NewHashJoin(NewScan(left), NewScan(right)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 1 {
		t.Errorf("1 and 1.0 must hash-join: %+v", got.Rows)
	}
}

func TestProject(t *testing.T) {
	r := rel([]string{"a", "b", "c"}, []any{"1", "2", "3"})
	got, err := Materialize(NewProject(NewScan(r), []string{"c", "a"}))
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows[0][0].Str() != "3" || got.Rows[0][1].Str() != "1" {
		t.Errorf("project: %+v", got.Rows)
	}
	if _, err := Materialize(NewProject(NewScan(r), []string{"zz"})); err == nil {
		t.Error("projecting missing column should fail")
	}
}

func TestSelect(t *testing.T) {
	r := rel([]string{"n"}, []any{1}, []any{2}, []any{3}, []any{4})
	got, err := Materialize(NewSelect(NewScan(r), func(cols []string, row value.Row) (bool, error) {
		return row[0].Int()%2 == 0, nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 2 {
		t.Errorf("select: %+v", got.Rows)
	}
}

func TestDistinct(t *testing.T) {
	r := rel([]string{"a", "b"}, []any{"x", 1}, []any{"x", 1}, []any{"x", 2})
	got, err := Materialize(NewDistinct(NewScan(r)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 2 {
		t.Errorf("distinct: %+v", got.Rows)
	}
}

func TestSortAndLimit(t *testing.T) {
	r := rel([]string{"n", "s"}, []any{3, "c"}, []any{1, "a"}, []any{2, "b"})
	got, err := Materialize(NewLimit(NewSort(NewScan(r), "n", true), 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 2 || got.Rows[0][0].Int() != 3 || got.Rows[1][0].Int() != 2 {
		t.Errorf("sort desc limit: %+v", got.Rows)
	}
	if _, err := Materialize(NewSort(NewScan(r), "zz", false)); err == nil {
		t.Error("sorting by missing column should fail")
	}
}

func TestIteratorComposition(t *testing.T) {
	// Join → project → distinct → sort asc → limit pipeline.
	left := rel([]string{"id", "v"}, []any{"a", 3}, []any{"b", 1}, []any{"c", 2})
	right := rel([]string{"id"}, []any{"a"}, []any{"b"}, []any{"c"}, []any{"a"})
	var it Iterator = NewHashJoin(NewScan(left), NewScan(right))
	it = NewProject(it, []string{"v"})
	it = NewDistinct(it)
	it = NewSort(it, "v", false)
	it = NewLimit(it, 2)
	got, err := Materialize(it)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 2 || got.Rows[0][0].Int() != 1 || got.Rows[1][0].Int() != 2 {
		t.Errorf("pipeline: %+v", got.Rows)
	}
}

// closeTrackIterator wraps an iterator, counting Close calls and
// optionally failing them — for pinning Close idempotence and error
// propagation through composed iterators.
type closeTrackIterator struct {
	Iterator
	closes   int
	closeErr error
}

func (c *closeTrackIterator) Close() error {
	c.closes++
	if err := c.Iterator.Close(); err != nil {
		return err
	}
	return c.closeErr
}

func TestScanCloseIdempotent(t *testing.T) {
	s := NewScan(rel([]string{"a"}, []any{"x"}, []any{"y"}))
	if err := s.Open(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Next(); !ok {
		t.Fatal("expected a row before Close")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, ok, err := s.Next(); ok || err != nil {
		t.Fatalf("Next after Close = ok=%v err=%v, want exhausted", ok, err)
	}
}

func TestHashJoinCloseIdempotentAndPropagates(t *testing.T) {
	left := &closeTrackIterator{
		Iterator: NewScan(rel([]string{"a"}, []any{"x"})),
		closeErr: errors.New("left: flush failed"),
	}
	right := &closeTrackIterator{
		Iterator: NewScan(rel([]string{"a"}, []any{"x"})),
		closeErr: errors.New("right: flush failed"),
	}
	j := NewHashJoin(left, right)
	if err := j.Open(); err != nil {
		t.Fatal(err)
	}
	err := j.Close()
	if err == nil || !strings.Contains(err.Error(), "left: flush failed") ||
		!strings.Contains(err.Error(), "right: flush failed") {
		t.Fatalf("Close = %v, want both child errors surfaced", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if left.closes != 1 || right.closes != 1 {
		t.Fatalf("children closed %d/%d times, want exactly once", left.closes, right.closes)
	}
}

func TestMaterializeSurfacesCloseError(t *testing.T) {
	it := &closeTrackIterator{
		Iterator: NewScan(rel([]string{"a"}, []any{"x"})),
		closeErr: errors.New("close: flush failed"),
	}
	if _, err := Materialize(it); err == nil || !strings.Contains(err.Error(), "flush failed") {
		t.Fatalf("Materialize = %v, want the Close error surfaced", err)
	}
	if it.closes != 1 {
		t.Fatalf("closed %d times, want once", it.closes)
	}
}
