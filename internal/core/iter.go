package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"tatooine/internal/value"
)

// Iterator is the Volcano-style operator interface of the residual-join
// engine: Open, repeated Next until exhausted, Close.
type Iterator interface {
	// Cols returns the output column names, stable across the iteration.
	Cols() []string
	// Open prepares the iterator; it must be called before Next.
	Open() error
	// Next returns the next row. ok=false signals exhaustion.
	Next() (row value.Row, ok bool, err error)
	// Close releases resources; the iterator cannot be reused.
	Close() error
}

// Relation is a materialized intermediate result.
type Relation struct {
	Cols []string
	Rows []value.Row
}

// colIndex returns the position of name, or -1.
func (r *Relation) colIndex(name string) int {
	for i, c := range r.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

// Materialize drains an iterator into a Relation. A Close error on a
// cleanly drained input surfaces (a streaming input may only learn of
// an upstream failure when it releases its resources); after an Open
// or Next error the Close error is secondary and the original wins.
func Materialize(it Iterator) (*Relation, error) {
	if err := it.Open(); err != nil {
		it.Close()
		return nil, err
	}
	out := &Relation{Cols: it.Cols()}
	for {
		row, ok, err := it.Next()
		if err != nil {
			it.Close()
			return nil, err
		}
		if !ok {
			if err := it.Close(); err != nil {
				return nil, err
			}
			return out, nil
		}
		out.Rows = append(out.Rows, row)
	}
}

// bufferedIterator is the optional capability of iterators that can
// report whether a row is ready without blocking. The streaming
// executor uses it to flush partial batches — a probe dispatch or a
// wire write — when the input would otherwise stall, instead of
// holding early rows hostage to a full batch.
type bufferedIterator interface {
	// Buffered reports (best effort) whether Next returns without
	// blocking on an upstream channel.
	Buffered() bool
}

// iterBuffered reports whether it can serve a Next without blocking.
// Iterators without the capability are fully materialized and never
// block.
func iterBuffered(it Iterator) bool {
	if b, ok := it.(bufferedIterator); ok {
		return b.Buffered()
	}
	return true
}

// ---------- scan ----------

// ScanIterator iterates a materialized relation.
type ScanIterator struct {
	rel    *Relation
	pos    int
	closed bool
}

// NewScan returns an iterator over rel.
func NewScan(rel *Relation) *ScanIterator { return &ScanIterator{rel: rel} }

func (s *ScanIterator) Cols() []string { return s.rel.Cols }
func (s *ScanIterator) Open() error    { s.pos = 0; return nil }

// Close is idempotent; a closed scan stops yielding rows.
func (s *ScanIterator) Close() error {
	s.closed = true
	return nil
}

func (s *ScanIterator) Next() (value.Row, bool, error) {
	if s.closed || s.pos >= len(s.rel.Rows) {
		return nil, false, nil
	}
	row := s.rel.Rows[s.pos]
	s.pos++
	return row, true, nil
}

// ---------- hash join ----------

// HashJoinIterator joins two inputs on their shared column names
// (natural join); with no shared columns it degrades to a cross
// product. The right input is materialized into a hash table on Open;
// the left side streams. With a budget set (NewHashJoinBudget) a build
// side that outgrows it spills to a Grace-style partitioned on-disk
// join instead of growing without bound — see spilljoin.go.
type HashJoinIterator struct {
	left, right Iterator
	cols        []string
	shared      []string
	leftKey     []int // positions of shared cols in left
	rightKey    []int // positions of shared cols in right
	rightPass   []int // positions of right cols not shared
	table       map[string][]value.Row
	rightRows   []value.Row // used for cross product
	cur         value.Row   // current left row
	matches     []value.Row // pending right matches for cur
	mi          int
	closed      bool

	budget  int64             // build-side byte budget; 0 = unbounded
	onSpill func(bytes int64) // called with byte deltas as spill files grow
	sj      *spillJoin        // non-nil once the build side spilled
}

// NewHashJoin builds a natural-join iterator over the inputs.
func NewHashJoin(left, right Iterator) *HashJoinIterator {
	h := &HashJoinIterator{left: left, right: right}
	lcols, rcols := left.Cols(), right.Cols()
	rset := make(map[string]int, len(rcols))
	for i, c := range rcols {
		rset[c] = i
	}
	for i, c := range lcols {
		if j, ok := rset[c]; ok {
			h.shared = append(h.shared, c)
			h.leftKey = append(h.leftKey, i)
			h.rightKey = append(h.rightKey, j)
		}
	}
	h.cols = append(h.cols, lcols...)
	for i, c := range rcols {
		if _, dup := indexOf(lcols, c); !dup {
			h.cols = append(h.cols, c)
			h.rightPass = append(h.rightPass, i)
		}
	}
	return h
}

// NewHashJoinBudget is NewHashJoin with a build-side memory budget in
// bytes; when the right input's estimated footprint exceeds it, the
// join spills both sides to a temporary on-disk store and joins
// partition-at-a-time (same row multiset, different order). budget <= 0
// never spills. onSpill, when non-nil, receives byte deltas as spill
// files grow. Cross products (no shared columns) never spill.
func NewHashJoinBudget(left, right Iterator, budget int64, onSpill func(bytes int64)) *HashJoinIterator {
	h := NewHashJoin(left, right)
	h.budget = budget
	h.onSpill = onSpill
	return h
}

// rowFootprint estimates a resident row's memory cost: slice and value
// headers plus string payloads. An estimate is enough — the budget
// bounds order-of-magnitude growth, not exact bytes.
func rowFootprint(r value.Row) int64 {
	n := int64(48)
	for _, v := range r {
		n += 32
		if v.Kind() == value.String {
			n += int64(len(v.Str()))
		}
	}
	return n
}

func indexOf(cols []string, name string) (int, bool) {
	for i, c := range cols {
		if c == name {
			return i, true
		}
	}
	return -1, false
}

func (h *HashJoinIterator) Cols() []string { return h.cols }

func (h *HashJoinIterator) Open() error {
	if err := h.left.Open(); err != nil {
		return err
	}
	if err := h.right.Open(); err != nil {
		return err
	}
	if len(h.shared) == 0 {
		for {
			row, ok, err := h.right.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			h.rightRows = append(h.rightRows, row)
		}
		return nil
	}
	h.table = make(map[string][]value.Row)
	var buildBytes int64
	for {
		row, ok, err := h.right.Next()
		if err != nil {
			return err
		}
		if !ok {
			if h.sj != nil {
				return h.sj.flush()
			}
			return nil
		}
		key, null := joinKey(row, h.rightKey)
		if null {
			continue // nulls never join
		}
		if h.sj != nil {
			if err := h.sj.addRight(row); err != nil {
				return err
			}
			continue
		}
		if h.budget > 0 {
			buildBytes += rowFootprint(row)
			if buildBytes > h.budget {
				// Budget exceeded: switch to the spill path, moving the
				// rows accumulated so far to disk before continuing.
				sj, err := newSpillJoin(h)
				if err != nil {
					return err
				}
				h.sj = sj
				for _, rows := range h.table {
					for _, r := range rows {
						if err := sj.addRight(r); err != nil {
							return err
						}
					}
				}
				h.table = nil
				if err := sj.addRight(row); err != nil {
					return err
				}
				continue
			}
		}
		h.table[key] = append(h.table[key], row)
	}
}

func joinKey(row value.Row, positions []int) (string, bool) {
	// Single-column joins (the common case) need no length framing: the
	// value key is already self-delimiting for a lone component.
	if len(positions) == 1 {
		v := row[positions[0]]
		if v.IsNull() {
			return "", true
		}
		return v.Key(), false
	}
	var b strings.Builder
	for _, p := range positions {
		v := row[p]
		if v.IsNull() {
			return "", true
		}
		value.Frame(&b, v.Key())
	}
	return b.String(), false
}

func (h *HashJoinIterator) Next() (value.Row, bool, error) {
	if h.sj != nil {
		return h.sj.next()
	}
	for {
		if h.mi < len(h.matches) {
			r := h.matches[h.mi]
			h.mi++
			return h.combine(h.cur, r), true, nil
		}
		row, ok, err := h.left.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		h.cur = row
		h.mi = 0
		if len(h.shared) == 0 {
			h.matches = h.rightRows
			continue
		}
		key, null := joinKey(row, h.leftKey)
		if null {
			h.matches = nil
			continue
		}
		h.matches = h.table[key]
	}
}

func (h *HashJoinIterator) combine(l, r value.Row) value.Row {
	out := make(value.Row, 0, len(h.cols))
	out = append(out, l...)
	for _, p := range h.rightPass {
		out = append(out, r[p])
	}
	return out
}

// Close closes both inputs exactly once, combining their errors
// (errors.Join) so a failure in either child surfaces instead of one
// masking the other. Repeated calls are no-ops returning nil.
func (h *HashJoinIterator) Close() error {
	if h.closed {
		return nil
	}
	h.closed = true
	var spillErr error
	if h.sj != nil {
		spillErr = h.sj.release()
	}
	return errors.Join(h.left.Close(), h.right.Close(), spillErr)
}

// Buffered reports whether Next would return without blocking: either
// matches for the current left row remain, or the streaming left side
// has a row ready. Best effort — a buffered left row may still join to
// nothing. A spilled join's first Next blocks draining the probe side
// (a grace join barriers on both inputs); afterwards everything is
// local, so it defers to the left input's readiness either way.
func (h *HashJoinIterator) Buffered() bool {
	if h.sj != nil && h.sj.leftDone {
		return true
	}
	return h.mi < len(h.matches) || iterBuffered(h.left)
}

// ---------- project ----------

// ProjectIterator reorders/narrows columns by name.
type ProjectIterator struct {
	in   Iterator
	cols []string
	pos  []int
}

// NewProject projects the input onto cols (which must exist in the
// input); construction errors surface at Open.
func NewProject(in Iterator, cols []string) *ProjectIterator {
	return &ProjectIterator{in: in, cols: cols}
}

func (p *ProjectIterator) Cols() []string { return p.cols }

func (p *ProjectIterator) Open() error {
	p.pos = p.pos[:0]
	for _, c := range p.cols {
		i, ok := indexOf(p.in.Cols(), c)
		if !ok {
			return fmt.Errorf("core: projection column %q not in input %v", c, p.in.Cols())
		}
		p.pos = append(p.pos, i)
	}
	return p.in.Open()
}

func (p *ProjectIterator) Next() (value.Row, bool, error) {
	row, ok, err := p.in.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	out := make(value.Row, len(p.pos))
	for i, j := range p.pos {
		out[i] = row[j]
	}
	return out, true, nil
}

func (p *ProjectIterator) Close() error { return p.in.Close() }

// Buffered reports whether the input has a row ready (projection is
// row-at-a-time, so it adds no buffering of its own).
func (p *ProjectIterator) Buffered() bool { return iterBuffered(p.in) }

// ---------- select (filter) ----------

// SelectIterator keeps rows satisfying a predicate.
type SelectIterator struct {
	in   Iterator
	pred func(cols []string, row value.Row) (bool, error)
}

// NewSelect wraps in with a row predicate.
func NewSelect(in Iterator, pred func(cols []string, row value.Row) (bool, error)) *SelectIterator {
	return &SelectIterator{in: in, pred: pred}
}

func (s *SelectIterator) Cols() []string { return s.in.Cols() }
func (s *SelectIterator) Open() error    { return s.in.Open() }
func (s *SelectIterator) Close() error   { return s.in.Close() }

// Buffered is best effort: a ready input row may yet be filtered out.
func (s *SelectIterator) Buffered() bool { return iterBuffered(s.in) }

func (s *SelectIterator) Next() (value.Row, bool, error) {
	for {
		row, ok, err := s.in.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		keep, err := s.pred(s.in.Cols(), row)
		if err != nil {
			return nil, false, err
		}
		if keep {
			return row, true, nil
		}
	}
}

// ---------- distinct ----------

// DistinctIterator removes duplicate rows.
type DistinctIterator struct {
	in   Iterator
	seen map[string]struct{}
}

// NewDistinct wraps in with duplicate elimination.
func NewDistinct(in Iterator) *DistinctIterator { return &DistinctIterator{in: in} }

func (d *DistinctIterator) Cols() []string { return d.in.Cols() }

func (d *DistinctIterator) Open() error {
	d.seen = make(map[string]struct{})
	return d.in.Open()
}

func (d *DistinctIterator) Close() error { return d.in.Close() }

// Buffered is best effort: a ready input row may be a duplicate.
func (d *DistinctIterator) Buffered() bool { return iterBuffered(d.in) }

func (d *DistinctIterator) Next() (value.Row, bool, error) {
	for {
		row, ok, err := d.in.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		k := row.Key()
		if _, dup := d.seen[k]; dup {
			continue
		}
		d.seen[k] = struct{}{}
		return row, true, nil
	}
}

// ---------- sort ----------

// SortIterator materializes and orders rows by one column.
type SortIterator struct {
	in   Iterator
	col  string
	desc bool
	rows []value.Row
	pos  int
}

// NewSort sorts the input by the named column.
func NewSort(in Iterator, col string, desc bool) *SortIterator {
	return &SortIterator{in: in, col: col, desc: desc}
}

func (s *SortIterator) Cols() []string { return s.in.Cols() }

func (s *SortIterator) Open() error {
	if err := s.in.Open(); err != nil {
		return err
	}
	ci, ok := indexOf(s.in.Cols(), s.col)
	if !ok {
		return fmt.Errorf("core: sort column %q not in input %v", s.col, s.in.Cols())
	}
	s.rows = nil
	for {
		row, ok, err := s.in.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		s.rows = append(s.rows, row)
	}
	sort.SliceStable(s.rows, func(i, j int) bool {
		c, _ := value.Compare(s.rows[i][ci], s.rows[j][ci])
		if s.desc {
			return c > 0
		}
		return c < 0
	})
	s.pos = 0
	return nil
}

func (s *SortIterator) Next() (value.Row, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	row := s.rows[s.pos]
	s.pos++
	return row, true, nil
}

func (s *SortIterator) Close() error { return s.in.Close() }

// ---------- limit ----------

// LimitIterator truncates the input after n rows.
type LimitIterator struct {
	in   Iterator
	n    int
	seen int
}

// NewLimit bounds the input to n rows (n <= 0 passes everything).
func NewLimit(in Iterator, n int) *LimitIterator { return &LimitIterator{in: in, n: n} }

func (l *LimitIterator) Cols() []string { return l.in.Cols() }
func (l *LimitIterator) Open() error    { l.seen = 0; return l.in.Open() }
func (l *LimitIterator) Close() error   { return l.in.Close() }

// Buffered reports whether Next returns without blocking — trivially
// true once the bound is reached (exhaustion is immediate).
func (l *LimitIterator) Buffered() bool {
	return (l.n > 0 && l.seen >= l.n) || iterBuffered(l.in)
}

func (l *LimitIterator) Next() (value.Row, bool, error) {
	if l.n > 0 && l.seen >= l.n {
		return nil, false, nil
	}
	row, ok, err := l.in.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	l.seen++
	return row, true, nil
}
