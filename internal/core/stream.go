package core

import (
	"context"
	"sync"
	"time"

	"tatooine/internal/value"
)

// BatchStream is a bounded channel of row batches with an error/done
// side-band — the tuple-granularity handoff of the streaming executor.
// The producer Sends batches and Closes with its terminal error; the
// consumer Recvs until the channel drains, then reads Err. Either side
// can end the flow early: the consumer Cancels (a LIMIT reached its
// bound, a client disconnected) and every pending Send returns false,
// so the producer unwinds instead of blocking on a channel nobody
// reads; the producer's context cancelling unblocks Send the same way.
type BatchStream struct {
	cols []string
	ch   chan []value.Row
	done chan struct{} // closed by Cancel: the consumer is gone

	closeOnce  sync.Once
	cancelOnce sync.Once

	mu  sync.Mutex
	err error
}

// NewBatchStream builds a stream carrying rows with the given columns,
// buffering up to capacity batches before Send blocks (backpressure).
func NewBatchStream(cols []string, capacity int) *BatchStream {
	if capacity < 1 {
		capacity = 1
	}
	return &BatchStream{
		cols: cols,
		ch:   make(chan []value.Row, capacity),
		done: make(chan struct{}),
	}
}

// Cols returns the column names of every batch.
func (s *BatchStream) Cols() []string { return s.cols }

// Send delivers one batch, blocking while the channel is full. It
// reports false when the consumer cancelled the stream or ctx ended —
// the producer should stop producing. Time spent blocked on a full
// channel — the consumer applying backpressure — is observed into
// tat_stream_stall_seconds; the non-blocking fast path costs nothing.
func (s *BatchStream) Send(ctx context.Context, batch []value.Row) bool {
	if len(batch) == 0 {
		return true
	}
	select {
	case s.ch <- batch:
		return true
	case <-s.done:
		return false
	case <-ctx.Done():
		return false
	default:
	}
	start := time.Now()
	select {
	case s.ch <- batch:
		streamStallSeconds.ObserveSince(start)
		return true
	case <-s.done:
		return false
	case <-ctx.Done():
		return false
	}
}

// Close ends the stream with err as its terminal status (nil for a
// clean end of input). The error is published before the channel
// closes, so a consumer that sees the channel drained reads it safely.
// Close is idempotent; only the first call's error sticks.
func (s *BatchStream) Close(err error) {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.err = err
		s.mu.Unlock()
		close(s.ch)
	})
}

// Recv returns the next batch; ok=false means the stream closed and
// Err carries its terminal status.
func (s *BatchStream) Recv() ([]value.Row, bool) {
	batch, ok := <-s.ch
	return batch, ok
}

// Err returns the terminal error set by Close. Only meaningful after
// Recv reported ok=false.
func (s *BatchStream) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Cancel tells the producer the consumer will read no further batches.
// Idempotent; safe to call concurrently with Send and Close.
func (s *BatchStream) Cancel() { s.cancelOnce.Do(func() { close(s.done) }) }

// buffered reports whether a Recv would return without blocking. Best
// effort: a closed-but-drained channel reads as not buffered.
func (s *BatchStream) buffered() bool { return len(s.ch) > 0 }

// nodeBuffer is the progressive result of one streaming DAG node that
// other nodes consume: rows append as probe batches land, each append
// waking the blocked cursors, and close publishes completion (or the
// node's error). Unlike BatchStream it never blocks the producer and
// supports any number of independent readers — a node's output can
// feed several downstream bind joins AND the root join's build side.
// Memory-wise it holds exactly what the materialize-then-join executor
// held: one relation per node.
type nodeBuffer struct {
	cols []string

	mu   sync.Mutex
	rows []value.Row
	done bool
	err  error
	wake chan struct{} // closed and replaced on every append/close (broadcast)
}

func newNodeBuffer(cols []string) *nodeBuffer {
	return &nodeBuffer{cols: cols, wake: make(chan struct{})}
}

// emit appends rows and wakes every waiting cursor.
func (b *nodeBuffer) emit(rows []value.Row) {
	if len(rows) == 0 {
		return
	}
	b.mu.Lock()
	b.rows = append(b.rows, rows...)
	b.broadcastLocked()
	b.mu.Unlock()
}

// close marks the buffer complete with the node's terminal error.
// Only the first call's status sticks.
func (b *nodeBuffer) close(err error) {
	b.mu.Lock()
	if !b.done {
		b.done = true
		b.err = err
		b.broadcastLocked()
	}
	b.mu.Unlock()
}

func (b *nodeBuffer) broadcastLocked() {
	close(b.wake)
	b.wake = make(chan struct{})
}

// cursor returns an independent reader positioned at the first row.
func (b *nodeBuffer) cursor(ctx context.Context) *bufCursor {
	return &bufCursor{buf: b, ctx: ctx}
}

// waitRelation blocks until the buffer completes and returns its rows
// as a relation — for consumers that genuinely need the whole input
// (dynamic source resolution) rather than a stream.
func (b *nodeBuffer) waitRelation(ctx context.Context) (*Relation, error) {
	for {
		b.mu.Lock()
		if b.done {
			rel, err := &Relation{Cols: b.cols, Rows: b.rows}, b.err
			b.mu.Unlock()
			if err != nil {
				return nil, err
			}
			return rel, nil
		}
		wake := b.wake
		b.mu.Unlock()
		select {
		case <-wake:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// bufCursor reads a nodeBuffer in arrival-order chunks, blocking when
// it has consumed everything emitted so far and the buffer is still
// open. Each cursor is single-consumer; a buffer can have many.
type bufCursor struct {
	buf *nodeBuffer
	ctx context.Context
	pos int
}

// next returns the rows emitted since the previous call. done=true
// means the buffer completed (err is its terminal status) or ctx ended.
func (c *bufCursor) next() (chunk []value.Row, done bool, err error) {
	for {
		c.buf.mu.Lock()
		if c.pos < len(c.buf.rows) {
			chunk = c.buf.rows[c.pos:len(c.buf.rows):len(c.buf.rows)]
			c.pos = len(c.buf.rows)
			c.buf.mu.Unlock()
			return chunk, false, nil
		}
		if c.buf.done {
			err = c.buf.err
			c.buf.mu.Unlock()
			return nil, true, err
		}
		wake := c.buf.wake
		c.buf.mu.Unlock()
		select {
		case <-wake:
		case <-c.ctx.Done():
			return nil, true, c.ctx.Err()
		}
	}
}

// buffered reports whether next would return rows without blocking.
func (c *bufCursor) buffered() bool {
	c.buf.mu.Lock()
	defer c.buf.mu.Unlock()
	return c.pos < len(c.buf.rows)
}

// ---------- stream/cursor iterator adapters ----------

// streamIterator adapts a BatchStream to the Iterator interface, so
// the sink node's live output slots straight into the hash-join /
// finishing pipeline. Close cancels the stream, which is what carries
// a downstream LIMIT's early termination back to the producer.
type streamIterator struct {
	s    *BatchStream
	cur  []value.Row
	pos  int
	done bool
}

func newStreamIterator(s *BatchStream) *streamIterator { return &streamIterator{s: s} }

func (it *streamIterator) Cols() []string { return it.s.Cols() }
func (it *streamIterator) Open() error    { return nil }

func (it *streamIterator) Next() (value.Row, bool, error) {
	for {
		if it.pos < len(it.cur) {
			row := it.cur[it.pos]
			it.pos++
			return row, true, nil
		}
		if it.done {
			return nil, false, nil
		}
		batch, ok := it.s.Recv()
		if !ok {
			it.done = true
			if err := it.s.Err(); err != nil {
				return nil, false, err
			}
			return nil, false, nil
		}
		it.cur, it.pos = batch, 0
	}
}

func (it *streamIterator) Close() error {
	it.s.Cancel()
	return nil
}

// Buffered reports whether Next would return without blocking.
func (it *streamIterator) Buffered() bool {
	return it.done || it.pos < len(it.cur) || it.s.buffered()
}

// cursorIterator adapts a bufCursor to the Iterator interface: a
// downstream bind join consumes its dependency's progressive output
// through one of these, launching probes as soon as rows land instead
// of waiting for the node to materialize.
type cursorIterator struct {
	c    *bufCursor
	cur  []value.Row
	pos  int
	done bool
}

func newCursorIterator(c *bufCursor) *cursorIterator { return &cursorIterator{c: c} }

func (it *cursorIterator) Cols() []string { return it.c.buf.cols }
func (it *cursorIterator) Open() error    { return nil }

func (it *cursorIterator) Next() (value.Row, bool, error) {
	for {
		if it.pos < len(it.cur) {
			row := it.cur[it.pos]
			it.pos++
			return row, true, nil
		}
		if it.done {
			return nil, false, nil
		}
		chunk, done, err := it.c.next()
		if err != nil {
			it.done = true
			return nil, false, err
		}
		if done {
			it.done = true
			return nil, false, nil
		}
		it.cur, it.pos = chunk, 0
	}
}

func (it *cursorIterator) Close() error { return nil }

// Buffered reports whether Next would return without blocking.
func (it *cursorIterator) Buffered() bool {
	return it.done || it.pos < len(it.cur) || it.c.buffered()
}
