package core

import (
	"fmt"
	"sync"
	"testing"

	"tatooine/internal/rdf"
)

// TestConcurrentMutationAndUnsaturatedQuery is the -race regression
// test for the unsaturated query path: queryGraph hands queries the
// live graph G (no satMu, no snapshot), so AddTriples / RemoveTriples
// running concurrently with query evaluation must be safe — batches
// are applied under one write-lock hold (rdf.Graph.AddBatch /
// RemoveBatch) and readers lock per operation. Run under
// `go test -race` (the CI race job does) to make the guarantee
// meaningful.
func TestConcurrentMutationAndUnsaturatedQuery(t *testing.T) {
	in := mutableInstance(t) // saturation disabled
	const q = "QUERY q(?x)\nGRAPH { ?x a :politician }"

	stop := make(chan struct{})
	var mutators sync.WaitGroup

	// Two mutators: one inserting fresh triples, one churning a batch
	// in and out (exercising RemoveTriples against concurrent readers).
	mutators.Add(2)
	go func() {
		defer mutators.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			in.AddTriples(rdf.MustParse(fmt.Sprintf(
				"@prefix : <http://t.example/> .\n:m%d a :politician .", i)))
		}
	}()
	go func() {
		defer mutators.Done()
		churn := rdf.MustParse(`
@prefix : <http://t.example/> .
:churn a :politician ; :position :deputy .
`)
		for {
			select {
			case <-stop:
				return
			default:
			}
			in.AddTriples(churn)
			in.RemoveTriples(churn)
		}
	}()

	// Concurrent queries over the live graph. The seed politician is
	// never touched, so every snapshot a query observes contains it.
	var queries sync.WaitGroup
	for r := 0; r < 4; r++ {
		queries.Add(1)
		go func() {
			defer queries.Done()
			for i := 0; i < 50; i++ {
				res, err := in.Query(q)
				if err != nil {
					t.Errorf("query under mutation: %v", err)
					return
				}
				if len(res.Rows) < 1 {
					t.Errorf("query lost the seed politician: %d rows", len(res.Rows))
					return
				}
			}
		}()
	}

	queries.Wait()
	close(stop)
	mutators.Wait()
}
