package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"tatooine/internal/rdf"
	"tatooine/internal/source"
)

// Instance is a mixed instance I = (G, D): the custom
// application-dependent RDF graph G plus a registry of data sources D
// (Definition 2.1 of the paper).
//
// The paper's instances are dynamic — journalists keep loading new
// tweets, INSEE tables and discovered endpoints mid-session — so the
// instance carries a monotonically increasing epoch: every mutation
// through the instance API (AddTriples, RemoveTriples, AddSource,
// DropSource, Invalidate) bumps it, and every derived cache (the
// saturation G∞ here, the mediator's result and probe caches in
// internal/server) is validated against it, so a mutation can never
// be answered with pre-mutation state.
type Instance struct {
	graph    *rdf.Graph
	sources  *source.Registry
	prefixes map[string]string
	saturate bool
	epoch    atomic.Uint64 // bumped by every mutation

	satMu    sync.Mutex // guards satGraph/satEpoch (queries run concurrently)
	satGraph *rdf.Graph // cached saturation of graph
	satEpoch uint64     // epoch satGraph was computed at
}

// InstanceOption configures an Instance.
type InstanceOption func(*Instance)

// WithPrefixes registers prefix declarations usable in BGP texts of
// queries against this instance.
func WithPrefixes(p map[string]string) InstanceOption {
	return func(in *Instance) {
		for k, v := range p {
			in.prefixes[k] = v
		}
	}
}

// WithSaturation makes graph atoms evaluate over G∞ (the RDFS
// saturation of G), the paper's answer semantics. The saturation is
// computed lazily, cached, and recomputed whenever the instance epoch
// moves past the cached copy — mutate the graph through AddTriples /
// RemoveTriples (not Graph().Add, which bypasses the epoch) and the
// next query evaluates over the fresh G∞.
func WithSaturation() InstanceOption {
	return func(in *Instance) { in.saturate = true }
}

// NewInstance creates a mixed instance around a custom graph. A nil
// graph starts empty.
func NewInstance(g *rdf.Graph, opts ...InstanceOption) *Instance {
	if g == nil {
		g = rdf.NewGraph()
	}
	in := &Instance{
		graph:    g,
		sources:  source.NewRegistry(),
		prefixes: make(map[string]string),
	}
	for _, o := range opts {
		o(in)
	}
	return in
}

// Graph returns the custom RDF graph G. Direct writes through it do
// not bump the instance epoch; callers that mutate mid-session should
// use AddTriples / RemoveTriples so dependent caches notice.
func (in *Instance) Graph() *rdf.Graph { return in.graph }

// Sources returns the source registry D.
func (in *Instance) Sources() *source.Registry { return in.sources }

// Prefixes returns the instance's prefix declarations.
func (in *Instance) Prefixes() map[string]string { return in.prefixes }

// Epoch returns the instance's mutation epoch. It starts at 0 and
// increases monotonically with every mutation; caches derived from the
// instance (saturation, result caches) key or validate against it.
func (in *Instance) Epoch() uint64 { return in.epoch.Load() }

// bump advances the epoch, invalidating every epoch-checked cache.
func (in *Instance) bump() uint64 { return in.epoch.Add(1) }

// AddTriples inserts triples into the custom graph G and returns how
// many were new. Any insertion bumps the epoch, so the next query
// re-saturates (under WithSaturation) and epoch-keyed result caches
// miss instead of serving pre-mutation rows.
func (in *Instance) AddTriples(ts []rdf.Triple) int {
	n := in.graph.AddAll(ts)
	if n > 0 {
		in.bump()
	}
	return n
}

// RemoveTriples deletes triples from G and returns how many were
// present; any deletion bumps the epoch.
func (in *Instance) RemoveTriples(ts []rdf.Triple) int {
	n := 0
	for _, t := range ts {
		if in.graph.Remove(t) {
			n++
		}
	}
	if n > 0 {
		in.bump()
	}
	return n
}

// AddSource registers a data source and bumps the epoch: queries whose
// answers could now include the new source must not be served from a
// pre-registration cache entry.
func (in *Instance) AddSource(s source.DataSource) error {
	if err := in.sources.Register(s); err != nil {
		return err
	}
	in.bump()
	return nil
}

// DropSource removes the source registered under uri, discarding its
// interposed probe cache with it, and bumps the epoch so cached
// results that involved the source are not served after the drop. It
// reports whether a source was removed.
func (in *Instance) DropSource(uri string) bool {
	if !in.sources.Deregister(uri) {
		return false
	}
	in.bump()
	return true
}

// Invalidate force-expires every cache derived from the instance: it
// flushes the interposed per-source probe caches (returning how many
// result entries they dropped) and bumps the epoch so saturation and
// epoch-keyed result caches recompute. Use it when sources mutated
// underneath the mediator without going through the instance API.
func (in *Instance) Invalidate() (epoch uint64, probeEntries int) {
	probeEntries = in.sources.InvalidateCaches()
	return in.bump(), probeEntries
}

// InvalidateSource flushes the probe cache of a single source
// (registered, or dynamically discovered and currently memoized) and
// bumps the epoch, so both the source's memoized probes and any
// whole-query results built on them stop being served. Sources are
// looked up without consulting the fallback resolver — invalidating a
// URI must never dial it — so a URI with no materialized source (which
// necessarily has no cache to flush) is an error.
func (in *Instance) InvalidateSource(uri string) (epoch uint64, probeEntries int, err error) {
	s, ok := in.sources.Lookup(uri)
	if !ok {
		return in.Epoch(), 0, fmt.Errorf("core: no materialized source for URI %q", uri)
	}
	if inv, ok := s.(source.Invalidator); ok {
		probeEntries = inv.Invalidate()
	}
	return in.bump(), probeEntries, nil
}

// queryGraph returns the graph BGPs evaluate over, saturating lazily
// when configured and re-saturating after the epoch moves (a graph
// mutation must be visible in G∞ on the very next query).
func (in *Instance) queryGraph() *rdf.Graph {
	if !in.saturate {
		return in.graph
	}
	in.satMu.Lock()
	defer in.satMu.Unlock()
	// The epoch is read under satMu so a query that raced a mutation
	// cannot stamp a fresh saturation with an older epoch and force the
	// next query to redo it. Reading it before Saturate is conservative:
	// a mutation landing mid-saturation moves the epoch past the stamp
	// and the next query recomputes — never the reverse.
	epoch := in.epoch.Load()
	if in.satGraph == nil || in.satEpoch != epoch {
		in.satGraph = rdf.Saturate(in.graph).Graph
		in.satEpoch = epoch
	}
	return in.satGraph
}

// graphSource wraps G as an internal DataSource so the planner and
// executor treat graph atoms uniformly with source atoms. extra prefix
// declarations (from a query's PREFIX clauses) extend the instance's.
func (in *Instance) graphSource(extra map[string]string) source.DataSource {
	return source.NewRDFSource("tatooine:G", in.queryGraph(), false).WithPrefixes(in.prefixesFor(extra))
}

// prefixesFor merges the instance prefixes with query-local ones.
func (in *Instance) prefixesFor(extra map[string]string) map[string]string {
	if len(extra) == 0 {
		return in.prefixes
	}
	merged := make(map[string]string, len(in.prefixes)+len(extra))
	for k, v := range in.prefixes {
		merged[k] = v
	}
	for k, v := range extra {
		merged[k] = v
	}
	return merged
}

// Query parses and executes a textual CMQ with default options.
func (in *Instance) Query(text string) (*QueryResult, error) {
	q, _, err := ParseCMQ(text)
	if err != nil {
		return nil, err
	}
	return in.Execute(q)
}

// ResolveSource resolves a URI against the instance's registry
// (including its remote-fallback resolver, enabling dynamic discovery).
func (in *Instance) ResolveSource(uri string) (source.DataSource, error) {
	s, err := in.sources.Resolve(uri)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return s, nil
}
