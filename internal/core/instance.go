package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tatooine/internal/rdf"
	"tatooine/internal/reason"
	"tatooine/internal/source"
	"tatooine/internal/store"
)

// Instance is a mixed instance I = (G, D): the custom
// application-dependent RDF graph G plus a registry of data sources D
// (Definition 2.1 of the paper).
//
// The paper's instances are dynamic — journalists keep loading new
// tweets, INSEE tables and discovered endpoints mid-session — so the
// instance carries a monotonically increasing epoch: every mutation
// through the instance API (AddTriples, RemoveTriples, AddSource,
// DropSource, Invalidate) bumps it, and every derived cache (the
// mediator's result and probe caches in internal/server) is validated
// against it, so a mutation can never be answered with pre-mutation
// state.
//
// The saturation G∞ is no longer epoch-invalidated by default: under
// WithSaturation the instance feeds graph deltas straight into an
// incremental reasoner (internal/reason) that maintains the
// materialized G∞ in O(delta) instead of recomputing it from scratch
// on every epoch move. WithFullResaturation restores the old
// recompute-per-epoch behavior for ablation.
type Instance struct {
	graph    *rdf.Graph
	sources  *source.Registry
	prefixes map[string]string
	saturate bool
	fullSat  bool          // ablation: full recompute per epoch move instead of delta maintenance
	epoch    atomic.Uint64 // bumped by every mutation

	// satMu serializes graph mutations (so the base graph and the
	// reasoner's maintained G∞ cannot diverge under concurrent mutators)
	// and guards the saturation state below. Queries hold it only long
	// enough to grab a graph pointer.
	satMu    sync.Mutex
	engine   *reason.Engine // maintained G∞ (delta mode; built on first saturated query)
	satGraph *rdf.Graph     // cached saturation (full-recompute mode)
	satEpoch uint64         // epoch satGraph was computed at

	// Full-recompute-mode counters (the delta-mode equivalents live in
	// the engine).
	fullRecomputes int64
	lastSatApply   time.Duration

	// dig caches per-source digests for digest-driven planning and
	// bind-join semi-join pruning, epoch-validated like every other
	// derived cache.
	dig digestCatalog

	// Persistence (nil/zero for in-memory instances; see persist.go).
	// satGen, pendingSatDrop and stErr are guarded by satMu.
	st  store.Store
	cat store.KV
	// satGen is the live saturation generation; pendingSatDrop is the
	// generation superseded by the most recent full rebuild, whose
	// pages are reclaimed one rebuild later (queries may still hold its
	// graph snapshot — see satFactory).
	satGen         uint64
	pendingSatDrop uint64
	stErr          error
	// storeOpts is consumed by Open before the store exists (set via
	// WithStoreOptions); unused on in-memory instances.
	storeOpts store.Options
}

// InstanceOption configures an Instance.
type InstanceOption func(*Instance)

// WithStoreOptions tunes the backing store a persistent instance opens
// — most usefully Pager.CacheSize, the hard cap on resident clean
// pages (the `-page-cache-mb` flag ends up here). Ignored by
// NewInstance and in-memory instances.
func WithStoreOptions(o store.Options) InstanceOption {
	return func(in *Instance) { in.storeOpts = o }
}

// WithPrefixes registers prefix declarations usable in BGP texts of
// queries against this instance.
func WithPrefixes(p map[string]string) InstanceOption {
	return func(in *Instance) {
		for k, v := range p {
			in.prefixes[k] = v
		}
	}
}

// WithSaturation makes graph atoms evaluate over G∞ (the RDFS
// saturation of G), the paper's answer semantics. The saturation is
// materialized lazily on the first saturated query and from then on
// maintained incrementally: AddTriples / RemoveTriples feed their delta
// into a reason.Engine (semi-naive insert rules, delete-and-rederive),
// so a mutation costs O(consequences-of-the-delta) instead of a full
// G∞ recompute. Mutate through the instance API — Graph().Add bypasses
// both the epoch and the reasoner; use Invalidate to force a rebuild
// after out-of-band writes.
func WithSaturation() InstanceOption {
	return func(in *Instance) { in.saturate = true }
}

// WithFullResaturation makes a saturated instance recompute G∞ from
// scratch whenever the epoch moves past the cached copy — the
// pre-delta-saturation behavior, kept as an ablation path
// ("tatooine serve -delta-saturation=false"). Implies WithSaturation.
func WithFullResaturation() InstanceOption {
	return func(in *Instance) { in.saturate, in.fullSat = true, true }
}

// NewInstance creates a mixed instance around a custom graph. A nil
// graph starts empty.
func NewInstance(g *rdf.Graph, opts ...InstanceOption) *Instance {
	if g == nil {
		g = rdf.NewGraph()
	}
	in := &Instance{
		graph:    g,
		sources:  source.NewRegistry(),
		prefixes: make(map[string]string),
	}
	for _, o := range opts {
		o(in)
	}
	return in
}

// Graph returns the custom RDF graph G. Direct writes through it do
// not bump the instance epoch and are invisible to the incremental
// reasoner; callers that mutate mid-session should use AddTriples /
// RemoveTriples so dependent caches and the maintained G∞ notice.
func (in *Instance) Graph() *rdf.Graph { return in.graph }

// Sources returns the source registry D.
func (in *Instance) Sources() *source.Registry { return in.sources }

// Prefixes returns the instance's prefix declarations.
func (in *Instance) Prefixes() map[string]string { return in.prefixes }

// Epoch returns the instance's mutation epoch. It starts at 0 and
// increases monotonically with every mutation; caches derived from the
// instance (result caches, full-mode saturation) key or validate
// against it.
func (in *Instance) Epoch() uint64 { return in.epoch.Load() }

// bump advances the epoch, invalidating every epoch-checked cache.
func (in *Instance) bump() uint64 { return in.epoch.Add(1) }

// AddTriples inserts triples into the custom graph G and returns how
// many were new. The batch is applied atomically with respect to
// concurrent readers, the actual delta is propagated into the
// maintained G∞ (delta mode), and any insertion bumps the epoch so
// epoch-keyed result caches miss instead of serving pre-mutation rows.
// The epoch moves only after the saturation is maintained: a request
// that observes the new epoch can never read a G∞ that predates the
// mutation.
func (in *Instance) AddTriples(ts []rdf.Triple) int {
	in.satMu.Lock()
	added := in.graph.AddBatch(ts)
	if len(added) > 0 {
		if in.engine != nil {
			in.engine.ApplyInsert(added)
		}
		in.bump()
		in.persistLocked()
	}
	in.satMu.Unlock()
	return len(added)
}

// RemoveTriples deletes triples from G and returns how many were
// present; the actual delta is retracted from the maintained G∞
// (delete-and-rederive) and any deletion bumps the epoch.
func (in *Instance) RemoveTriples(ts []rdf.Triple) int {
	in.satMu.Lock()
	removed := in.graph.RemoveBatch(ts)
	if len(removed) > 0 {
		if in.engine != nil {
			in.engine.ApplyDelete(removed)
		}
		in.bump()
		in.persistLocked()
	}
	in.satMu.Unlock()
	return len(removed)
}

// AddSource registers a data source and bumps the epoch: queries whose
// answers could now include the new source must not be served from a
// pre-registration cache entry. The graph is untouched, so the
// maintained G∞ is not (delta mode: no longer) recomputed.
func (in *Instance) AddSource(s source.DataSource) error {
	if err := in.sources.Register(s); err != nil {
		return err
	}
	in.bump()
	if in.st != nil {
		in.satMu.Lock()
		in.persistSourceLocked(s.URI(), s.Model().String(), false)
		in.persistLocked()
		in.satMu.Unlock()
	}
	return nil
}

// DropSource removes the source registered under uri, discarding its
// interposed probe cache with it, and bumps the epoch so cached
// results that involved the source are not served after the drop. It
// reports whether a source was removed.
func (in *Instance) DropSource(uri string) bool {
	if !in.sources.Deregister(uri) {
		return false
	}
	in.bump()
	if in.st != nil {
		in.satMu.Lock()
		in.persistSourceLocked(uri, "", true)
		in.persistLocked()
		in.satMu.Unlock()
	}
	return true
}

// Invalidate force-expires every cache derived from the instance: it
// flushes the interposed per-source probe caches (returning how many
// result entries they dropped), rebuilds the incrementally maintained
// G∞ from the base graph (out-of-band Graph() writes become visible),
// and bumps the epoch so epoch-keyed result caches and the full-mode
// saturation recompute. Use it when sources or the graph mutated
// underneath the mediator without going through the instance API. The
// epoch bumps even when nothing was cached — the caller asked for a
// hard reset and the bump is what guarantees it downstream.
func (in *Instance) Invalidate() (epoch uint64, probeEntries int) {
	probeEntries = in.sources.InvalidateCaches()
	in.satMu.Lock()
	if in.engine != nil {
		in.engine.Rebuild()
	}
	in.satGraph = nil
	epoch = in.bump()
	in.persistLocked()
	in.satMu.Unlock()
	return epoch, probeEntries
}

// InvalidateSource flushes the probe cache of a single source
// (registered, or dynamically discovered and currently memoized) and
// bumps the epoch, so both the source's memoized probes and any
// whole-query results built on them stop being served. Sources are
// looked up without consulting the fallback resolver — invalidating a
// URI must never dial it — so a URI with no materialized source (which
// necessarily has no cache to flush) is an error.
func (in *Instance) InvalidateSource(uri string) (epoch uint64, probeEntries int, err error) {
	s, ok := in.sources.Lookup(uri)
	if !ok {
		return in.Epoch(), 0, fmt.Errorf("core: no materialized source for URI %q", uri)
	}
	if inv, ok := s.(source.Invalidator); ok {
		probeEntries = inv.Invalidate()
	}
	return in.bump(), probeEntries, nil
}

// SaturationStats is the shape of the mediator's /stats "saturation"
// block, shared with the incremental reasoner.
type SaturationStats = reason.Stats

// SaturationStats reports how G∞ is being maintained: the mode ("off",
// "delta" or "full"), how many implicit triples are materialized, and
// the delta-apply / full-recompute counters behind the mediator's
// /stats saturation block.
func (in *Instance) SaturationStats() reason.Stats {
	if !in.saturate {
		return reason.Stats{Mode: "off"}
	}
	in.satMu.Lock()
	defer in.satMu.Unlock()
	if !in.fullSat {
		if in.engine == nil {
			return reason.Stats{Mode: "delta"}
		}
		return in.engine.Stats()
	}
	st := reason.Stats{
		Mode:           "full",
		FullRecomputes: in.fullRecomputes,
		LastApply:      in.lastSatApply,
	}
	if in.satGraph != nil {
		st.Derived = in.satGraph.Size() - in.graph.Size()
	}
	return st
}

// queryGraph returns the graph BGPs evaluate over. Unsaturated
// instances serve G directly. Saturated instances serve the
// incrementally maintained G∞ (built on first use, then kept fresh by
// AddTriples/RemoveTriples — no per-query staleness check needed
// because maintenance happens synchronously with the mutation), or,
// under WithFullResaturation, the old epoch-checked full recompute.
func (in *Instance) queryGraph() *rdf.Graph {
	if !in.saturate {
		return in.graph
	}
	in.satMu.Lock()
	defer in.satMu.Unlock()
	if !in.fullSat {
		if in.engine == nil {
			cfg := reason.Config{}
			if in.st != nil {
				cfg.SatFactory = in.satFactory
			}
			in.engine = reason.New(in.graph, cfg)
			// The initial saturation is derived state, but committing it
			// now is what makes the next boot warm (Adopt, no recompute).
			in.persistLocked()
		}
		return in.engine.Graph()
	}
	// The epoch is read under satMu so a query that raced a mutation
	// cannot stamp a fresh saturation with an older epoch and force the
	// next query to redo it. Reading it before Saturate is conservative:
	// a mutation landing mid-saturation moves the epoch past the stamp
	// and the next query recomputes — never the reverse.
	epoch := in.epoch.Load()
	if in.satGraph == nil || in.satEpoch != epoch {
		start := time.Now()
		in.satGraph = rdf.Saturate(in.graph).Graph
		in.satEpoch = epoch
		in.fullRecomputes++
		in.lastSatApply = time.Since(start)
	}
	return in.satGraph
}

// graphSource wraps G as an internal DataSource so the planner and
// executor treat graph atoms uniformly with source atoms. extra prefix
// declarations (from a query's PREFIX clauses) extend the instance's.
func (in *Instance) graphSource(extra map[string]string) source.DataSource {
	return source.NewRDFSource("tatooine:G", in.queryGraph(), false).WithPrefixes(in.prefixesFor(extra))
}

// prefixesFor merges the instance prefixes with query-local ones.
func (in *Instance) prefixesFor(extra map[string]string) map[string]string {
	if len(extra) == 0 {
		return in.prefixes
	}
	merged := make(map[string]string, len(in.prefixes)+len(extra))
	for k, v := range in.prefixes {
		merged[k] = v
	}
	for k, v := range extra {
		merged[k] = v
	}
	return merged
}

// Query parses and executes a textual CMQ with default options.
func (in *Instance) Query(text string) (*QueryResult, error) {
	q, _, err := ParseCMQ(text)
	if err != nil {
		return nil, err
	}
	return in.Execute(q)
}

// ResolveSource resolves a URI against the instance's registry
// (including its remote-fallback resolver, enabling dynamic discovery).
func (in *Instance) ResolveSource(uri string) (source.DataSource, error) {
	s, err := in.sources.Resolve(uri)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return s, nil
}
