package core

import (
	"fmt"
	"sync"

	"tatooine/internal/rdf"
	"tatooine/internal/source"
)

// Instance is a mixed instance I = (G, D): the custom
// application-dependent RDF graph G plus a registry of data sources D
// (Definition 2.1 of the paper).
type Instance struct {
	graph    *rdf.Graph
	sources  *source.Registry
	prefixes map[string]string
	saturate bool
	satOnce  sync.Once  // guards satGraph (queries may run concurrently)
	satGraph *rdf.Graph // cached saturation of graph
}

// InstanceOption configures an Instance.
type InstanceOption func(*Instance)

// WithPrefixes registers prefix declarations usable in BGP texts of
// queries against this instance.
func WithPrefixes(p map[string]string) InstanceOption {
	return func(in *Instance) {
		for k, v := range p {
			in.prefixes[k] = v
		}
	}
}

// WithSaturation makes graph atoms evaluate over G∞ (the RDFS
// saturation of G), the paper's answer semantics. The saturation is
// computed lazily and cached; mutate the graph via Graph() only before
// the first query.
func WithSaturation() InstanceOption {
	return func(in *Instance) { in.saturate = true }
}

// NewInstance creates a mixed instance around a custom graph. A nil
// graph starts empty.
func NewInstance(g *rdf.Graph, opts ...InstanceOption) *Instance {
	if g == nil {
		g = rdf.NewGraph()
	}
	in := &Instance{
		graph:    g,
		sources:  source.NewRegistry(),
		prefixes: make(map[string]string),
	}
	for _, o := range opts {
		o(in)
	}
	return in
}

// Graph returns the custom RDF graph G.
func (in *Instance) Graph() *rdf.Graph { return in.graph }

// Sources returns the source registry D.
func (in *Instance) Sources() *source.Registry { return in.sources }

// Prefixes returns the instance's prefix declarations.
func (in *Instance) Prefixes() map[string]string { return in.prefixes }

// AddSource registers a data source.
func (in *Instance) AddSource(s source.DataSource) error {
	return in.sources.Register(s)
}

// queryGraph returns the graph BGPs evaluate over, saturating on first
// use when configured.
func (in *Instance) queryGraph() *rdf.Graph {
	if !in.saturate {
		return in.graph
	}
	in.satOnce.Do(func() {
		in.satGraph = rdf.Saturate(in.graph).Graph
	})
	return in.satGraph
}

// graphSource wraps G as an internal DataSource so the planner and
// executor treat graph atoms uniformly with source atoms. extra prefix
// declarations (from a query's PREFIX clauses) extend the instance's.
func (in *Instance) graphSource(extra map[string]string) source.DataSource {
	return source.NewRDFSource("tatooine:G", in.queryGraph(), false).WithPrefixes(in.prefixesFor(extra))
}

// prefixesFor merges the instance prefixes with query-local ones.
func (in *Instance) prefixesFor(extra map[string]string) map[string]string {
	if len(extra) == 0 {
		return in.prefixes
	}
	merged := make(map[string]string, len(in.prefixes)+len(extra))
	for k, v := range in.prefixes {
		merged[k] = v
	}
	for k, v := range extra {
		merged[k] = v
	}
	return merged
}

// Query parses and executes a textual CMQ with default options.
func (in *Instance) Query(text string) (*QueryResult, error) {
	q, _, err := ParseCMQ(text)
	if err != nil {
		return nil, err
	}
	return in.Execute(q)
}

// ResolveSource resolves a URI against the instance's registry
// (including its remote-fallback resolver, enabling dynamic discovery).
func (in *Instance) ResolveSource(uri string) (source.DataSource, error) {
	s, err := in.sources.Resolve(uri)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return s, nil
}
