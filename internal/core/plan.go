package core

import (
	"fmt"
	"sort"
	"strings"
)

// PlanStep schedules one atom.
type PlanStep struct {
	// AtomIndex identifies the atom in the CMQ body.
	AtomIndex int
	// BindJoin pushes bound variable values into the sub-query as
	// parameters (the atom's InVars are available when it runs).
	BindJoin bool
	// Dynamic marks a run-time-resolved source (SourceVar designator).
	Dynamic bool
	// EstCost is the planner's cardinality estimate (-1 unknown).
	EstCost int
	// Wave groups steps that run in parallel; waves execute in order.
	Wave int
}

// Plan is an ordered, wave-grouped execution schedule for a CMQ,
// honouring the paper's three rules (§2.3): source-designating
// variables are bound before their atoms run, independent atoms share a
// wave (parallelism), and cheaper atoms run in earlier waves
// (selectivity-first).
type Plan struct {
	Steps []PlanStep
	outs  [][]string // per-atom effective out variables
}

// NumWaves returns the number of execution waves.
func (p *Plan) NumWaves() int {
	n := 0
	for _, s := range p.Steps {
		if s.Wave+1 > n {
			n = s.Wave + 1
		}
	}
	return n
}

// Explain renders the plan for humans.
func (p *Plan) Explain(q *CMQ) string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan for %s (%d waves)\n", q.String(), p.NumWaves())
	for _, s := range p.Steps {
		a := q.Atoms[s.AtomIndex]
		mode := "scan"
		if s.BindJoin {
			mode = "bind-join(" + strings.Join(a.Sub.InVars, ",") + ")"
		}
		if s.Dynamic {
			mode += " dynamic"
		}
		fmt.Fprintf(&b, "  wave %d: atom %d [%s] %s est=%d out=(%s)\n",
			s.Wave, s.AtomIndex, a.Designator(), mode, s.EstCost,
			strings.Join(p.outs[s.AtomIndex], ","))
	}
	return b.String()
}

// planQuery builds the execution plan. naiveOrder disables selectivity
// ordering (one atom per wave, declaration order) for ablation studies.
func (in *Instance) planQuery(q *CMQ, naiveOrder bool) (*Plan, error) {
	if err := q.Validate(in.prefixesFor(q.Prefixes)); err != nil {
		return nil, err
	}
	n := len(q.Atoms)
	outs := make([][]string, n)
	for i, a := range q.Atoms {
		o, err := a.outVars(in.prefixesFor(q.Prefixes))
		if err != nil {
			return nil, err
		}
		clean := make([]string, len(o))
		for j, v := range o {
			clean[j] = strings.TrimPrefix(v, "?")
		}
		outs[i] = clean
	}

	costs := make([]int, n)
	for i, a := range q.Atoms {
		costs[i] = in.estimateAtom(a, q.Prefixes)
	}

	plan := &Plan{outs: outs}
	scheduled := make([]bool, n)
	bound := make(map[string]struct{})
	wave := 0
	for remaining := n; remaining > 0; wave++ {
		// An atom is runnable when its source designator is bound and
		// its parameters are available (BGPs tolerate missing InVars by
		// running unbound only if none of their InVars are pending —
		// we require InVars bound for all languages: running with
		// partial bindings would change semantics).
		var runnable []int
		for i, a := range q.Atoms {
			if scheduled[i] {
				continue
			}
			if a.SourceVar != "" {
				if _, ok := bound[a.SourceVar]; !ok {
					continue
				}
			}
			ok := true
			for _, iv := range a.Sub.InVars {
				if _, b := bound[strings.TrimPrefix(iv, "?")]; !b {
					ok = false
					break
				}
			}
			if ok {
				runnable = append(runnable, i)
			}
		}
		if len(runnable) == 0 {
			return nil, fmt.Errorf("core: circular dependency among atom parameters/designators")
		}
		// Selectivity-first: unknown costs (-1) sort last.
		sort.SliceStable(runnable, func(a, b int) bool {
			ca, cb := costs[runnable[a]], costs[runnable[b]]
			if ca < 0 {
				ca = 1 << 30
			}
			if cb < 0 {
				cb = 1 << 30
			}
			return ca < cb
		})
		if naiveOrder {
			// Declaration order, one atom per wave.
			sort.Ints(runnable)
			runnable = runnable[:1]
		}
		for _, i := range runnable {
			a := q.Atoms[i]
			plan.Steps = append(plan.Steps, PlanStep{
				AtomIndex: i,
				BindJoin:  len(a.Sub.InVars) > 0,
				Dynamic:   a.SourceVar != "",
				EstCost:   costs[i],
				Wave:      wave,
			})
			scheduled[i] = true
			remaining--
		}
		// Only after the whole wave completes do its outputs become
		// available to later waves.
		for _, s := range plan.Steps {
			if s.Wave == wave {
				for _, v := range outs[s.AtomIndex] {
					bound[v] = struct{}{}
				}
			}
		}
	}
	return plan, nil
}

// estimateAtom asks the target source for a cardinality estimate.
// Dynamic sources are unknown (-1): they cannot be consulted before the
// designating variable is bound.
func (in *Instance) estimateAtom(a Atom, extra map[string]string) int {
	if a.SourceVar != "" {
		return -1
	}
	if a.Kind == GraphAtom {
		return in.graphSource(extra).EstimateCost(a.Sub, len(a.Sub.InVars))
	}
	s, err := in.sources.Resolve(a.SourceURI)
	if err != nil {
		return -1
	}
	return s.EstimateCost(a.Sub, len(a.Sub.InVars))
}
