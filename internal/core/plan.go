package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"tatooine/internal/source"
)

// PlanStep schedules one atom as a node of the operator DAG.
type PlanStep struct {
	// AtomIndex identifies the atom in the CMQ body.
	AtomIndex int
	// BindJoin pushes bound variable values into the sub-query as
	// parameters (the atom's InVars are available when it runs).
	BindJoin bool
	// Dynamic marks a run-time-resolved source (SourceVar designator).
	Dynamic bool
	// EstRows is the planner's result-cardinality estimate (-1 unknown).
	EstRows int
	// EstCost is the planner's total-effort estimate: access work plus
	// rows produced, with remote sources carrying their round-trip
	// overhead (-1 unknown).
	EstCost int
	// Wave is the step's dependency depth. The pipelined executor
	// ignores it (nodes fire as soon as their own Deps finish); the
	// WaveBarrier ablation executor runs depth d+1 only after every
	// step of depth d completed — the pre-DAG behavior.
	Wave int
	// Deps indexes the steps (positions in Plan.Steps) whose outputs
	// feed this step: the producers of its InVars, plus — for dynamic
	// atoms — every earlier step, because the set of URIs to contact is
	// resolved from the full intermediate result, not a projection of
	// it.
	Deps []int
}

// Plan is a dependency-DAG execution schedule for a CMQ, honouring the
// paper's three rules (§2.3): source-designating variables are bound
// before their atoms run, atoms with disjoint dependencies overlap
// (parallelism), and cheaper atoms are scheduled first
// (selectivity-first, by estimated rows with estimated cost as the
// tie-breaker). Steps are listed in a topological order: every
// dependency of a step precedes it.
type Plan struct {
	Steps []PlanStep
	outs  [][]string // per-atom effective out variables
}

// NumWaves returns the depth of the DAG — the length of the longest
// dependency chain, i.e. the number of barrier-synchronized waves the
// ablation executor would run.
func (p *Plan) NumWaves() int {
	n := 0
	for _, s := range p.Steps {
		if s.Wave+1 > n {
			n = s.Wave + 1
		}
	}
	return n
}

// Dependents returns, per step position, the positions of the steps
// that consume its output — the reverse of PlanStep.Deps.
func (p *Plan) Dependents() [][]int {
	deps := make([][]int, len(p.Steps))
	for i, s := range p.Steps {
		for _, d := range s.Deps {
			deps[d] = append(deps[d], i)
		}
	}
	return deps
}

// StreamSink picks the node whose output the streaming executor sends
// straight into the root join's probe side (everything else becomes a
// hash-build input). It must be a node nothing depends on — otherwise
// its consumers would deadlock against the bounded sink channel — and
// among those the most expensive one wins: the slowest drain is the
// one worth overlapping with the client-facing stream. At least one
// sink always exists (the last step: dependents only point forward).
func (p *Plan) StreamSink() int {
	deps := p.Dependents()
	sink := len(p.Steps) - 1
	bestCost := -1 << 30
	for i := range p.Steps {
		if len(deps[i]) > 0 {
			continue
		}
		if c := p.Steps[i].EstCost; c >= bestCost {
			sink, bestCost = i, c
		}
	}
	return sink
}

// Explain renders the plan for humans: one line per DAG node with its
// estimated rows/cost, dependency edges and dependency depth (wave).
func (p *Plan) Explain(q *CMQ) string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan for %s (%d nodes, depth %d)\n", q.String(), len(p.Steps), p.NumWaves())
	for i, s := range p.Steps {
		a := q.Atoms[s.AtomIndex]
		mode := "scan"
		if s.BindJoin {
			mode = "bind-join(" + strings.Join(a.Sub.InVars, ",") + ")"
		}
		if s.Dynamic {
			mode += " dynamic"
		}
		deps := "-"
		if len(s.Deps) > 0 {
			parts := make([]string, len(s.Deps))
			for j, d := range s.Deps {
				parts[j] = fmt.Sprintf("%d", d)
			}
			deps = strings.Join(parts, ",")
		}
		fmt.Fprintf(&b, "  node %d: atom %d [%s] %s rows=%d cost=%d wave %d deps=(%s) out=(%s)\n",
			i, s.AtomIndex, a.Designator(), mode, s.EstRows, s.EstCost, s.Wave, deps,
			strings.Join(p.outs[s.AtomIndex], ","))
	}
	return b.String()
}

// planQuery builds the execution DAG. Atoms are scheduled greedily:
// among the runnable atoms (designator bound, InVars produced) the
// planner prefers atoms connected by at least one shared variable to
// what is already scheduled — connected atoms narrow the intermediate
// result where disconnected ones cross-product it — and among those
// picks the smallest estimated row count (unknown estimates last,
// estimated cost breaking ties). Row estimates are tightened with the
// sources' digest statistics (exact counts, histograms — see
// internal/digest.RefineEstimate) unless opts.NoDigestPlanning; the
// source's own estimate remains the fallback and the upper bound.
// opts.NaiveOrder disables ordering entirely (one atom per wave,
// declaration order, a sequential dependency chain) for ablation
// studies.
//
// ctx bounds the estimation phase: remote sources answer estimates
// over HTTP (sequentially, one per atom), so a dead request must stop
// consulting them instead of paying up to one client timeout per
// remaining atom. An estimate cut short degrades to unknown; a context
// found dead between atoms aborts the plan.
func (in *Instance) planQuery(ctx context.Context, q *CMQ, opts ExecOptions) (*Plan, error) {
	if err := q.Validate(in.prefixesFor(q.Prefixes)); err != nil {
		return nil, err
	}
	n := len(q.Atoms)
	outs := make([][]string, n)
	for i, a := range q.Atoms {
		o, err := a.outVars(in.prefixesFor(q.Prefixes))
		if err != nil {
			return nil, err
		}
		clean := make([]string, len(o))
		for j, v := range o {
			clean[j] = strings.TrimPrefix(v, "?")
		}
		outs[i] = clean
	}

	rows := make([]int, n)
	costs := make([]int, n)
	for i, a := range q.Atoms {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rows[i], costs[i] = in.estimateAtom(a, q.Prefixes)
		if !opts.NoDigestPlanning {
			rows[i] = in.refineAtomRows(ctx, a, q.Prefixes, rows[i])
		}
	}

	plan := &Plan{outs: outs}
	scheduled := make([]bool, n)
	// producer maps a bound variable to the first plan step producing it.
	producer := make(map[string]int)
	for remaining := n; remaining > 0; {
		var runnable []int
		for i, a := range q.Atoms {
			if scheduled[i] {
				continue
			}
			if a.SourceVar != "" {
				if _, ok := producer[a.SourceVar]; !ok {
					continue
				}
			}
			ok := true
			for _, iv := range a.Sub.InVars {
				if _, b := producer[strings.TrimPrefix(iv, "?")]; !b {
					ok = false
					break
				}
			}
			if ok {
				runnable = append(runnable, i)
			}
		}
		if len(runnable) == 0 {
			return nil, fmt.Errorf("core: circular dependency among atom parameters/designators")
		}

		var pick int
		if opts.NaiveOrder {
			sort.Ints(runnable)
			pick = runnable[0]
		} else {
			pick = pickAtom(runnable, q, outs, rows, costs, producer)
		}

		a := q.Atoms[pick]
		step := PlanStep{
			AtomIndex: pick,
			BindJoin:  len(a.Sub.InVars) > 0,
			Dynamic:   a.SourceVar != "",
			EstRows:   rows[pick],
			EstCost:   costs[pick],
		}
		pos := len(plan.Steps)
		switch {
		case opts.NaiveOrder:
			// Declaration order, one atom per wave, each step gated on
			// every previous one: the fully sequential ablation baseline.
			step.Wave = pos
			for d := 0; d < pos; d++ {
				step.Deps = append(step.Deps, d)
			}
		case step.Dynamic:
			// The designating URIs are resolved from the full intermediate
			// result (§2.2): restricting them to a projection of one
			// producer could contact — and fail on — URIs the complete
			// join would have filtered out.
			for d := 0; d < pos; d++ {
				step.Deps = append(step.Deps, d)
			}
		default:
			seen := make(map[int]struct{})
			for _, iv := range a.Sub.InVars {
				d := producer[strings.TrimPrefix(iv, "?")]
				if _, dup := seen[d]; !dup {
					seen[d] = struct{}{}
					step.Deps = append(step.Deps, d)
				}
			}
			sort.Ints(step.Deps)
		}
		for _, d := range step.Deps {
			if w := plan.Steps[d].Wave + 1; w > step.Wave {
				step.Wave = w
			}
		}
		plan.Steps = append(plan.Steps, step)
		scheduled[pick] = true
		remaining--
		for _, v := range outs[pick] {
			if _, dup := producer[v]; !dup {
				producer[v] = pos
			}
		}
	}
	return plan, nil
}

// pickAtom chooses the next atom to schedule: connected atoms (sharing
// a variable with something already produced) beat disconnected ones,
// then lower estimated rows beat higher (unknown last), then lower
// cost, then declaration order for determinism.
func pickAtom(runnable []int, q *CMQ, outs [][]string, rows, costs []int, producer map[string]int) int {
	connected := func(i int) bool {
		if len(producer) == 0 {
			return true // nothing scheduled yet: everything is a seed
		}
		if len(q.Atoms[i].Sub.InVars) > 0 || q.Atoms[i].SourceVar != "" {
			return true // consumes bound values by construction
		}
		for _, v := range outs[i] {
			if _, ok := producer[v]; ok {
				return true
			}
		}
		return false
	}
	key := func(i int) (int, int, int) {
		r, c := rows[i], costs[i]
		if r < 0 {
			r = 1 << 30
		}
		if c < 0 {
			c = 1 << 30
		}
		conn := 1
		if connected(i) {
			conn = 0
		}
		return conn, r, c
	}
	best := runnable[0]
	bc, br, bco := key(best)
	for _, i := range runnable[1:] {
		c, r, co := key(i)
		if c < bc || (c == bc && (r < br || (r == br && (co < bco || (co == bco && i < best))))) {
			best, bc, br, bco = i, c, r, co
		}
	}
	return best
}

// estimateAtom asks the target source for a (rows, cost) estimate.
// Dynamic sources are unknown (-1, -1): they cannot be consulted
// before the designating variable is bound.
func (in *Instance) estimateAtom(a Atom, extra map[string]string) (rows, cost int) {
	if a.SourceVar != "" {
		return -1, -1
	}
	if a.Kind == GraphAtom {
		return source.EstimateOf(in.graphSource(extra), a.Sub, len(a.Sub.InVars))
	}
	s, err := in.sources.Resolve(a.SourceURI)
	if err != nil {
		return -1, -1
	}
	return source.EstimateOf(s, a.Sub, len(a.Sub.InVars))
}
