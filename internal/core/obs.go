package core

import "tatooine/internal/obs"

// Process-wide executor metrics (internal/obs.Default): every instance
// in the process reports into the same families, labeled by source URI
// where a per-source breakdown matters.
var (
	probeSeconds = obs.Default.HistogramVec("tat_probe_seconds",
		"Source sub-query round-trip latency by source URI.",
		"source", obs.DurationBuckets())
	probeBatchSize = obs.Default.GaugeVec("tat_probe_batch_size",
		"Effective bind-join probe batch size by source URI (adaptive when tuned).",
		"source")
	streamStallSeconds = obs.Default.Histogram("tat_stream_stall_seconds",
		"Time stream producers spent blocked on consumer backpressure.",
		obs.DurationBuckets())
	digestFetchTotal = obs.Default.Counter("tat_digest_fetch_total",
		"Digest builds/fetches (digest catalog misses).")
	digestHitTotal = obs.Default.Counter("tat_digest_hits_total",
		"Digest catalog hits.")
)
