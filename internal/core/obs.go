package core

import "tatooine/internal/obs"

// Process-wide executor metrics (internal/obs.Default): every instance
// in the process reports into the same families, labeled by source URI
// where a per-source breakdown matters.
var (
	probeSeconds = obs.Default.HistogramVec("tat_probe_seconds",
		"Source sub-query round-trip latency by source URI.",
		"source", obs.DurationBuckets())
	probeBatchSize = obs.Default.GaugeVec("tat_probe_batch_size",
		"Effective bind-join probe batch size by source URI (adaptive when tuned).",
		"source")
	streamStallSeconds = obs.Default.Histogram("tat_stream_stall_seconds",
		"Time stream producers spent blocked on consumer backpressure.",
		obs.DurationBuckets())
	digestFetchTotal = obs.Default.Counter("tat_digest_fetch_total",
		"Digest builds/fetches (digest catalog misses).")
	digestHitTotal = obs.Default.Counter("tat_digest_hits_total",
		"Digest catalog hits.")
	spilledJoinsTotal = obs.Default.Counter("tat_spilled_joins_total",
		"Residual hash joins whose build side exceeded the join memory budget and spilled to disk.")
	spilledBytesTotal = obs.Default.Counter("tat_spilled_bytes_total",
		"Bytes written to spill files by budget-bounded hash joins.")
)

// SpillCounters reports the process-wide spill totals — joins whose
// build side exceeded the configured memory budget, and the bytes they
// wrote to disk — for surfaces (like the server's /stats) that mirror
// the /metrics families as JSON.
func SpillCounters() (joins, bytes int64) {
	return spilledJoinsTotal.Value(), spilledBytesTotal.Value()
}
