package core

import (
	"strings"
	"testing"

	"tatooine/internal/relstore"
	"tatooine/internal/source"
	"tatooine/internal/value"
)

// failingSource errors on every execution; used for error-path tests.
type failingSource struct{ uri string }

func (f failingSource) URI() string                  { return f.uri }
func (f failingSource) Model() source.Model          { return source.RelationalModel }
func (f failingSource) Languages() []source.Language { return []source.Language{source.LangSQL} }
func (f failingSource) Execute(source.SubQuery, []value.Value) (*source.Result, error) {
	return nil, &sourceDown{}
}
func (f failingSource) EstimateCost(source.SubQuery, int) int { return 1 }

type sourceDown struct{}

func (*sourceDown) Error() string { return "source down" }

func TestSourceErrorPropagates(t *testing.T) {
	in := NewInstance(nil)
	if err := in.AddSource(failingSource{"sql://down"}); err != nil {
		t.Fatal(err)
	}
	_, err := in.Query(`QUERY q(?v) FROM <sql://down> OUT(?v) { SELECT x FROM t }`)
	if err == nil || !strings.Contains(err.Error(), "source down") {
		t.Errorf("error propagation: %v", err)
	}
}

func TestSourceErrorPropagatesInParallelWave(t *testing.T) {
	in := NewInstance(nil)
	in.AddSource(failingSource{"sql://down"})
	db := relstore.NewDatabase("ok")
	db.Exec("CREATE TABLE t (x INT)")
	db.Exec("INSERT INTO t VALUES (1)")
	in.AddSource(source.NewRelSource("sql://ok", db))
	_, err := in.Query(`
QUERY q(?a, ?b)
FROM <sql://ok> OUT(?a) { SELECT x FROM t }
FROM <sql://down> OUT(?b) { SELECT x FROM t }
`)
	if err == nil || !strings.Contains(err.Error(), "source down") {
		t.Errorf("parallel wave error: %v", err)
	}
}

func TestBindJoinErrorInProbe(t *testing.T) {
	in := NewInstance(nil)
	in.AddSource(failingSource{"sql://down"})
	db := relstore.NewDatabase("ok")
	db.Exec("CREATE TABLE t (x INT)")
	db.Exec("INSERT INTO t VALUES (1), (2), (3)")
	in.AddSource(source.NewRelSource("sql://ok", db))
	_, err := in.Query(`
QUERY q(?a, ?b)
FROM <sql://ok> OUT(?a) { SELECT x FROM t }
FROM <sql://down> IN(?a) OUT(?b) { SELECT x FROM t WHERE x = ? }
`)
	if err == nil || !strings.Contains(err.Error(), "source down") {
		t.Errorf("bind join probe error: %v", err)
	}
}

func TestBindJoinSkipsNullParams(t *testing.T) {
	in := NewInstance(nil)
	db := relstore.NewDatabase("d")
	db.Exec("CREATE TABLE src (k TEXT)")
	db.Exec("INSERT INTO src (k) VALUES ('a')")
	db.Exec("INSERT INTO src VALUES (NULL)")
	db.Exec("CREATE TABLE tgt (k TEXT, v INT)")
	db.Exec("INSERT INTO tgt VALUES ('a', 1)")
	in.AddSource(source.NewRelSource("sql://d", db))
	res, err := in.Query(`
QUERY q(?k, ?v)
FROM <sql://d> OUT(?k) { SELECT k FROM src }
FROM <sql://d> IN(?k) OUT(?k, ?v) { SELECT k, v FROM tgt WHERE k = ? }
`)
	if err != nil {
		t.Fatal(err)
	}
	// The NULL outer row must not probe (and cannot join).
	if len(res.Rows) != 1 || res.Rows[0][1].Int() != 1 {
		t.Errorf("null param handling: %+v", res.Rows)
	}
	if res.Stats.SubQueries != 2 { // one scan + one probe (not two probes)
		t.Errorf("probe count: %+v", res.Stats)
	}
}

func TestEmptyOuterBindJoin(t *testing.T) {
	in := NewInstance(nil)
	db := relstore.NewDatabase("d")
	db.Exec("CREATE TABLE src (k TEXT)")
	db.Exec("CREATE TABLE tgt (k TEXT)")
	in.AddSource(source.NewRelSource("sql://d", db))
	res, err := in.Query(`
QUERY q(?k)
FROM <sql://d> OUT(?k) { SELECT k FROM src }
FROM <sql://d> IN(?k) OUT(?k) { SELECT k FROM tgt WHERE k = ? }
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("empty outer: %+v", res.Rows)
	}
}

func TestColumnArityMismatch(t *testing.T) {
	in := NewInstance(nil)
	db := relstore.NewDatabase("d")
	db.Exec("CREATE TABLE t (a INT, b INT)")
	db.Exec("INSERT INTO t VALUES (1, 2)")
	in.AddSource(source.NewRelSource("sql://d", db))
	// Two columns returned for one OUT variable.
	_, err := in.Query(`QUERY q(?a) FROM <sql://d> OUT(?a) { SELECT a, b FROM t }`)
	if err == nil || !strings.Contains(err.Error(), "columns") {
		t.Errorf("arity mismatch: %v", err)
	}
}

func TestQueryTextParseErrorSurfaces(t *testing.T) {
	in := NewInstance(nil)
	if _, err := in.Query("NOT A QUERY"); err == nil {
		t.Error("garbage accepted")
	}
}

func TestInstanceOfNilGraph(t *testing.T) {
	in := NewInstance(nil)
	if in.Graph() == nil || in.Graph().Size() != 0 {
		t.Error("nil graph should become an empty graph")
	}
	// A graph atom over the empty graph yields no rows, not an error.
	res, err := in.Query(`QUERY q(?x) GRAPH { ?x a <http://e/C> }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("rows: %+v", res.Rows)
	}
}
