package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"

	"tatooine/internal/pager"
	"tatooine/internal/store"
	"tatooine/internal/value"
)

// Grace-style spill path for HashJoinIterator. When a join's build side
// exceeds ExecOptions.JoinMemBudget the iterator stops growing its
// in-memory hash table and instead hash-partitions BOTH inputs into a
// temporary on-disk store, then joins partition-at-a-time: one
// partition's build rows are resident at a time (~1/spillPartitions of
// the build side), and probe rows are read back one by one through the
// temp store's small page cache. Output is the same row multiset as the
// in-memory join; only order differs.
//
// Cross products (no shared columns) never spill — there is no join key
// to partition on, and partitioning cannot shrink them anyway. Extreme
// key skew (one key carrying most of the build side) also cannot be
// split by hashing; such a partition is loaded whole, like every hash
// join must.

const (
	// spillPartitions is the grace-join fan-out. The resident build
	// table per partition is ~1/32 of the build side, so builds up to
	// roughly 32x the budget stay within it.
	spillPartitions = 32
	// spillCommitEvery bounds the temp store's uncommitted dirty page
	// set: partition writes commit every this many rows.
	spillCommitEvery = 4096
	// spillCacheSize is the temp store's page-cache budget in pages
	// (256 pages = 1 MiB); spill I/O is sequential, cache residency
	// buys little.
	spillCacheSize = 256
)

// spillJoin holds the on-disk state of a spilled hash join.
type spillJoin struct {
	h   *HashJoinIterator
	dir string
	st  store.Store

	rightKS  [spillPartitions]store.KV
	leftKS   [spillPartitions]store.KV
	rightSeq [spillPartitions]uint64
	leftSeq  [spillPartitions]uint64

	pending       int   // rows written since the last temp-store commit
	bytes         int64 // bytes written and not yet reported to onSpill
	leftDone      bool
	part          int // current partition being joined; -1 before the first
	leftPos       uint64
	table         map[string][]value.Row // current partition's build table
	closed        bool
	rightReported bool
}

// newSpillJoin creates the temp store. The caller moves already-built
// rows in via addRight.
func newSpillJoin(h *HashJoinIterator) (*spillJoin, error) {
	dir, err := os.MkdirTemp("", "tat-spill-")
	if err != nil {
		return nil, fmt.Errorf("core: spill join: %w", err)
	}
	st, err := store.Open(filepath.Join(dir, "spill.db"), store.Options{
		Pager:           pager.Options{CacheSize: spillCacheSize, NoSync: true},
		AutoVacuumRatio: -1,
	})
	if err != nil {
		os.RemoveAll(dir)
		return nil, fmt.Errorf("core: spill join: %w", err)
	}
	s := &spillJoin{h: h, dir: dir, st: st, part: -1}
	for p := 0; p < spillPartitions; p++ {
		if s.rightKS[p], err = st.Keyspace(fmt.Sprintf("r/%d", p)); err == nil {
			s.leftKS[p], err = st.Keyspace(fmt.Sprintf("l/%d", p))
		}
		if err != nil {
			s.release()
			return nil, fmt.Errorf("core: spill join: %w", err)
		}
	}
	return s, nil
}

func spillPartOf(key string) int {
	f := fnv.New32a()
	f.Write([]byte(key))
	return int(f.Sum32() % spillPartitions)
}

func seqKey(n uint64) []byte {
	var k [8]byte
	binary.BigEndian.PutUint64(k[:], n)
	return k[:]
}

// addRight spills one build-side row. Null-keyed rows never join and
// are dropped here, exactly as the in-memory build drops them.
func (s *spillJoin) addRight(row value.Row) error {
	key, null := joinKey(row, s.h.rightKey)
	if null {
		return nil
	}
	p := spillPartOf(key)
	return s.putRow(s.rightKS[p], &s.rightSeq[p], row)
}

// addLeft spills one probe-side row; null-keyed rows match nothing.
func (s *spillJoin) addLeft(row value.Row) error {
	key, null := joinKey(row, s.h.leftKey)
	if null {
		return nil
	}
	p := spillPartOf(key)
	return s.putRow(s.leftKS[p], &s.leftSeq[p], row)
}

// putRow appends a row to a partition keyspace under the next sequence
// number — sequence keys preserve the input multiset exactly
// (duplicate rows stay duplicated) and make read-back a series of O(1)
// cursor-free point gets.
func (s *spillJoin) putRow(kv store.KV, seq *uint64, row value.Row) error {
	buf := value.EncodeRow(row)
	if _, err := kv.Put(seqKey(*seq), buf); err != nil {
		return fmt.Errorf("core: spill join: %w", err)
	}
	*seq++
	s.bytes += int64(len(buf)) + 8
	s.pending++
	if s.pending >= spillCommitEvery {
		return s.flush()
	}
	return nil
}

// flush commits buffered partition writes and reports the byte delta.
func (s *spillJoin) flush() error {
	if s.pending > 0 {
		s.pending = 0
		if err := s.st.Commit(); err != nil {
			return fmt.Errorf("core: spill join: %w", err)
		}
	}
	if s.bytes > 0 && s.h.onSpill != nil {
		s.h.onSpill(s.bytes)
		s.bytes = 0
	}
	return nil
}

// partitionLeft drains the streaming probe side to disk. A grace join
// is a barrier on both inputs; this runs once, on the first Next.
func (s *spillJoin) partitionLeft() error {
	for {
		row, ok, err := s.h.left.Next()
		if err != nil {
			return err
		}
		if !ok {
			return s.flush()
		}
		if err := s.addLeft(row); err != nil {
			return err
		}
	}
}

// loadRightPartition materializes partition p's build table.
func (s *spillJoin) loadRightPartition(p int) error {
	s.table = make(map[string][]value.Row)
	if s.rightSeq[p] == 0 {
		return nil
	}
	var decErr error
	err := s.rightKS[p].Scan(nil, func(_, v []byte) bool {
		row, err := value.DecodeRow(v)
		if err != nil {
			decErr = err
			return false
		}
		key, _ := joinKey(row, s.h.rightKey) // null-keyed rows were never spilled
		s.table[key] = append(s.table[key], row)
		return true
	})
	if err == nil {
		err = decErr
	}
	if err != nil {
		return fmt.Errorf("core: spill join: %w", err)
	}
	return nil
}

// nextLeftRow reads the current partition's next probe row, or ok=false
// at the partition's end.
func (s *spillJoin) nextLeftRow() (value.Row, bool, error) {
	if s.part < 0 || s.leftPos >= s.leftSeq[s.part] {
		return nil, false, nil
	}
	v, ok, err := s.leftKS[s.part].Get(seqKey(s.leftPos))
	if err != nil {
		return nil, false, fmt.Errorf("core: spill join: %w", err)
	}
	if !ok {
		return nil, false, fmt.Errorf("core: spill join: missing probe row %d in partition %d", s.leftPos, s.part)
	}
	s.leftPos++
	row, err := value.DecodeRow(v)
	if err != nil {
		return nil, false, fmt.Errorf("core: spill join: %w", err)
	}
	return row, true, nil
}

// next is the spilled iterator's Next: partition the probe side once,
// then walk partitions, probing each against its resident build table.
func (s *spillJoin) next() (value.Row, bool, error) {
	h := s.h
	if !s.leftDone {
		if err := s.partitionLeft(); err != nil {
			return nil, false, err
		}
		s.leftDone = true
	}
	for {
		if h.mi < len(h.matches) {
			r := h.matches[h.mi]
			h.mi++
			return h.combine(h.cur, r), true, nil
		}
		row, ok, err := s.nextLeftRow()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			// Advance to the next partition with probe rows.
			s.part++
			if s.part >= spillPartitions {
				return nil, false, nil
			}
			s.leftPos = 0
			if s.leftSeq[s.part] == 0 {
				continue // nothing to probe; skip the build load too
			}
			if err := s.loadRightPartition(s.part); err != nil {
				return nil, false, err
			}
			continue
		}
		key, _ := joinKey(row, h.leftKey) // null-keyed rows were never spilled
		h.cur = row
		h.mi = 0
		h.matches = s.table[key]
	}
}

// release tears down the temp store and its directory.
func (s *spillJoin) release() error {
	if s.closed {
		return nil
	}
	s.closed = true
	if s.bytes > 0 && s.h.onSpill != nil {
		s.h.onSpill(s.bytes)
		s.bytes = 0
	}
	err := s.st.Close()
	if rmErr := os.RemoveAll(s.dir); err == nil {
		err = rmErr
	}
	return err
}
