package core

import (
	"sync"
	"time"
)

// Bounds and thresholds of adaptive probe-batch sizing. A batch that
// round-trips faster than growBelow is paying proportionally too much
// per-request overhead — ship more tuples per trip; one slower than
// shrinkAbove serializes too much work behind a single request —
// ship fewer and let MaxFanout overlap them.
const (
	// MinProbeBatch is the smallest batch size the tuner will shrink to.
	MinProbeBatch = 16
	// MaxProbeBatch is the largest batch size the tuner will grow to.
	MaxProbeBatch = 256

	growBelow   = 100 * time.Millisecond
	shrinkAbove = time.Second

	// wireFloor filters observations that never touched the network: a
	// batch answered from the probe cache (or by an in-process source)
	// returns in microseconds and carries no round-trip signal — letting
	// it through would pump the size to MaxProbeBatch off cache latency.
	wireFloor = 500 * time.Microsecond
)

// BatchTuner adapts the effective bind-join batch size per source from
// observed batch round-trip latency, within [MinProbeBatch,
// MaxProbeBatch]. One tuner is shared across queries (the mediator
// keeps one per server) so the size converges over traffic instead of
// resetting per request. The zero value is not usable; use
// NewBatchTuner.
type BatchTuner struct {
	mu    sync.Mutex
	sizes map[string]int
}

// NewBatchTuner returns an empty tuner; each source's size is seeded
// from the executor's configured ProbeBatch on first use.
func NewBatchTuner() *BatchTuner {
	return &BatchTuner{sizes: make(map[string]int)}
}

func clampBatch(n int) int {
	if n < MinProbeBatch {
		return MinProbeBatch
	}
	if n > MaxProbeBatch {
		return MaxProbeBatch
	}
	return n
}

// Size returns the current batch size for a source, seeding it from
// fallback (clamped into the tuner's bounds) the first time the
// source is seen.
func (t *BatchTuner) Size(uri string, fallback int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n, ok := t.sizes[uri]; ok {
		return n
	}
	n := clampBatch(fallback)
	t.sizes[uri] = n
	return n
}

// Observe feeds one batch round-trip latency back into the tuner:
// fast round trips double the source's batch size, slow ones halve
// it, both clamped into [MinProbeBatch, MaxProbeBatch]. Round trips
// under wireFloor are discarded — they were answered from a cache or
// an in-process source and say nothing about the wire.
func (t *BatchTuner) Observe(uri string, rtt time.Duration) {
	if rtt < wireFloor {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n, ok := t.sizes[uri]
	if !ok {
		n = DefaultProbeBatch
	}
	switch {
	case rtt < growBelow:
		n *= 2
	case rtt > shrinkAbove:
		n /= 2
	}
	t.sizes[uri] = clampBatch(n)
}

// Sizes snapshots the per-source batch sizes (for /stats).
func (t *BatchTuner) Sizes() map[string]int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int, len(t.sizes))
	for k, v := range t.sizes {
		out[k] = v
	}
	return out
}
