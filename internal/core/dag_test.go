package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"tatooine/internal/relstore"
	"tatooine/internal/source"
	"tatooine/internal/value"
)

// randomFixture builds a three-source relational instance with random
// overlapping key data (duplicates, nulls, dangling keys) so random
// queries exercise joins that actually match, miss and cross-product.
func randomFixture(t *testing.T, rng *rand.Rand) *Instance {
	t.Helper()
	in := NewInstance(nil)
	for s := 0; s < 3; s++ {
		db := relstore.NewDatabase(fmt.Sprintf("s%d", s))
		if _, err := db.Exec("CREATE TABLE t (k TEXT, v TEXT)"); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 12; i++ {
			var stmt string
			if rng.Intn(8) == 0 {
				stmt = fmt.Sprintf("INSERT INTO t (k) VALUES ('k%d')", rng.Intn(6)) // NULL v
			} else {
				stmt = fmt.Sprintf("INSERT INTO t VALUES ('k%d', 'k%d')", rng.Intn(6), rng.Intn(6))
			}
			if _, err := db.Exec(stmt); err != nil {
				t.Fatal(err)
			}
		}
		if err := in.AddSource(source.NewRelSource(fmt.Sprintf("sql://s%d", s), db)); err != nil {
			t.Fatal(err)
		}
	}
	return in
}

// randomCMQ generates a valid random query: a seed scan followed by a
// mix of scans and bind joins whose InVars are produced by earlier
// atoms — the shapes the planner turns into multi-level DAGs.
func randomCMQ(rng *rand.Rand) string {
	nAtoms := 2 + rng.Intn(3)
	var vars []string
	fresh := 0
	newVar := func() string {
		v := fmt.Sprintf("x%d", fresh)
		fresh++
		vars = append(vars, v)
		return v
	}
	pickVar := func() string { return vars[rng.Intn(len(vars))] }

	var atoms []string
	for i := 0; i < nAtoms; i++ {
		src := fmt.Sprintf("sql://s%d", rng.Intn(3))
		if i == 0 || rng.Intn(3) == 0 {
			o1 := newVar()
			o2 := newVar()
			atoms = append(atoms, fmt.Sprintf("FROM <%s> OUT(?%s, ?%s) { SELECT k, v FROM t }", src, o1, o2))
		} else {
			iv := pickVar()
			ov := newVar()
			atoms = append(atoms, fmt.Sprintf(
				"FROM <%s> IN(?%s) OUT(?%s, ?%s) { SELECT k, v FROM t WHERE k = ? }", src, iv, iv, ov))
		}
	}
	head := make([]string, len(vars))
	for i, v := range vars {
		head[i] = "?" + v
	}
	q := "QUERY q(" + strings.Join(head, ", ") + ")\n" + strings.Join(atoms, "\n")
	if rng.Intn(3) == 0 {
		q += "\nDISTINCT"
	}
	return q
}

// TestDAGMatchesWaveBarrierProperty is the acceptance property of the
// pipelined executor: over randomized CMQs, the operator-DAG execution
// returns a row multiset identical to the wave-barrier path (both
// parallel and sequential), mirroring the PR 4 saturation equivalence
// test. Run under -race in CI.
func TestDAGMatchesWaveBarrierProperty(t *testing.T) {
	const seeds, queries = 5, 25
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := randomFixture(t, rng)
		for qn := 0; qn < queries; qn++ {
			text := randomCMQ(rng)
			q := mustParse(t, text)
			ref, err := in.ExecuteOpts(q, ExecOptions{WaveBarrier: true, Parallel: false})
			if err != nil {
				t.Fatalf("seed %d query %d (wave ref): %v\n%s", seed, qn, err, text)
			}
			for _, cfg := range []struct {
				name string
				opts ExecOptions
			}{
				{"dag-parallel", ExecOptions{Parallel: true}},
				{"dag-sequential", ExecOptions{Parallel: false}},
				{"dag-materialized", ExecOptions{Parallel: true, MaterializeFinal: true}},
				{"dag-full-materialized", ExecOptions{Parallel: true, Materialized: true}},
				{"wave-parallel", ExecOptions{WaveBarrier: true, Parallel: true}},
			} {
				res, err := in.ExecuteOpts(q, cfg.opts)
				if err != nil {
					t.Fatalf("seed %d query %d (%s): %v\n%s", seed, qn, cfg.name, err, text)
				}
				if !equalStrings(res.Cols, ref.Cols) {
					t.Fatalf("seed %d query %d (%s): cols %v want %v\n%s",
						seed, qn, cfg.name, res.Cols, ref.Cols, text)
				}
				if got, want := sortedRows(res), sortedRows(ref); !equalStrings(got, want) {
					t.Fatalf("seed %d query %d (%s): row multiset diverges\n got %v\nwant %v\nquery:\n%s\nplan:\n%s",
						seed, qn, cfg.name, got, want, text, res.Plan.Explain(q))
				}
			}
		}
	}
}

// TestDAGReportsNodeStats checks per-node estimated vs actual rows
// surface in ExecStats, so misestimates are visible.
func TestDAGReportsNodeStats(t *testing.T) {
	in, _ := batchFixture(t)
	res, err := in.ExecuteOpts(mustParse(t, batchQuery), ExecOptions{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.Nodes) != 2 {
		t.Fatalf("node stats: %+v", res.Stats.Nodes)
	}
	seedNode := res.Stats.Nodes[0]
	if seedNode.Rows != 7 { // 7 seed rows (incl. dup + NULL)
		t.Errorf("seed node actual rows = %d, want 7 (stats %+v)", seedNode.Rows, res.Stats.Nodes)
	}
	if seedNode.EstRows < 0 || seedNode.EstCost < seedNode.EstRows {
		t.Errorf("seed node estimates: %+v", seedNode)
	}
}

// slowSource is a context-aware source whose probes block for delay
// unless the query context is cancelled first — a stand-in for a slow
// remote with latency injected at the source boundary.
type slowSource struct {
	uri     string
	delay   time.Duration
	started chan struct{}
	once    sync.Once

	mu       sync.Mutex
	inFlight int
}

func (s *slowSource) URI() string                           { return s.uri }
func (s *slowSource) Model() source.Model                   { return source.RelationalModel }
func (s *slowSource) Languages() []source.Language          { return []source.Language{source.LangSQL} }
func (s *slowSource) EstimateCost(source.SubQuery, int) int { return 1 }

func (s *slowSource) Execute(q source.SubQuery, params []value.Value) (*source.Result, error) {
	return s.ExecuteContext(context.Background(), q, params)
}

func (s *slowSource) ExecuteContext(ctx context.Context, q source.SubQuery, params []value.Value) (*source.Result, error) {
	s.once.Do(func() { close(s.started) })
	s.mu.Lock()
	s.inFlight++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.inFlight--
		s.mu.Unlock()
	}()
	select {
	case <-time.After(s.delay):
		return &source.Result{Cols: []string{"k", "v"}, Rows: []value.Row{{params[0], value.NewString("v")}}}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// TestCancellationStopsSlowProbes proves a cancelled context stops a
// slow latency-injected source promptly — well before its injected
// delay — with no goroutine leaked by the executor.
func TestCancellationStopsSlowProbes(t *testing.T) {
	in := NewInstance(nil)
	db := relstore.NewDatabase("seed")
	if _, err := db.Exec("CREATE TABLE seed (k TEXT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO seed VALUES ('k%d')", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.AddSource(source.NewRelSource("sql://seed", db)); err != nil {
		t.Fatal(err)
	}
	slow := &slowSource{uri: "sql://slow", delay: 30 * time.Second, started: make(chan struct{})}
	if err := in.AddSource(slow); err != nil {
		t.Fatal(err)
	}
	q := mustParse(t, `
QUERY q(?k, ?v)
FROM <sql://seed> OUT(?k) { SELECT k FROM seed }
FROM <sql://slow> IN(?k) OUT(?k, ?v) { SELECT k, v FROM t WHERE k = ? }
`)

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := in.ExecuteContext(ctx, q, ExecOptions{Parallel: true, ProbeBatch: 1})
		errCh <- err
	}()

	<-slow.started
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled execution returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled execution did not return before the injected 30s delay")
	}

	// Every probe goroutine must unwind: no goroutine leak, no probe
	// left blocking on the 30s delay.
	deadline := time.Now().Add(5 * time.Second)
	for {
		slow.mu.Lock()
		inFlight := slow.inFlight
		slow.mu.Unlock()
		if inFlight == 0 && runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("leak: %d probes in flight, %d goroutines (baseline %d)",
				inFlight, runtime.NumGoroutine(), before)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCancelledContextRefusesExecution: a context that is already done
// never ships a sub-query.
func TestCancelledContextRefusesExecution(t *testing.T) {
	in, probe := batchFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := in.ExecuteContext(ctx, mustParse(t, batchQuery), ExecOptions{Parallel: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if probe.execCalls != 0 || probe.batchCalls != 0 {
		t.Errorf("probes shipped under a dead context: exec=%d batch=%d", probe.execCalls, probe.batchCalls)
	}
}

// TestDefaultMaxFanout checks the hardware-derived default stays in
// its documented clamp.
func TestDefaultMaxFanout(t *testing.T) {
	n := DefaultMaxFanout()
	if n < 8 || n > 64 {
		t.Fatalf("DefaultMaxFanout() = %d, want within [8, 64]", n)
	}
	if want := 2 * runtime.GOMAXPROCS(0); want >= 8 && want <= 64 && n != want {
		t.Fatalf("DefaultMaxFanout() = %d, want 2*GOMAXPROCS = %d", n, want)
	}
}
