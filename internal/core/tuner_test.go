package core

import (
	"testing"
	"time"
)

func TestBatchTunerGrowShrinkClamp(t *testing.T) {
	tn := NewBatchTuner()
	if got := tn.Size("s", DefaultProbeBatch); got != DefaultProbeBatch {
		t.Fatalf("seed size = %d, want %d", got, DefaultProbeBatch)
	}
	// Fast round trips double up to the cap.
	for i := 0; i < 5; i++ {
		tn.Observe("s", time.Millisecond)
	}
	if got := tn.Size("s", DefaultProbeBatch); got != MaxProbeBatch {
		t.Fatalf("after fast observes size = %d, want %d", got, MaxProbeBatch)
	}
	// Slow round trips halve down to the floor.
	for i := 0; i < 10; i++ {
		tn.Observe("s", 2*time.Second)
	}
	if got := tn.Size("s", DefaultProbeBatch); got != MinProbeBatch {
		t.Fatalf("after slow observes size = %d, want %d", got, MinProbeBatch)
	}
	// Mid-range latency holds steady.
	tn.Observe("s", 300*time.Millisecond)
	if got := tn.Size("s", DefaultProbeBatch); got != MinProbeBatch {
		t.Fatalf("mid-range observe moved size to %d", got)
	}
	// Sub-wire-floor observations (cache hits, in-process sources) are
	// discarded: they would otherwise pump the size off cache latency.
	for i := 0; i < 5; i++ {
		tn.Observe("s", 50*time.Microsecond)
	}
	if got := tn.Size("s", DefaultProbeBatch); got != MinProbeBatch {
		t.Fatalf("sub-floor observes moved size to %d", got)
	}
	// Seeds clamp into the bounds.
	if got := tn.Size("tiny", 2); got != MinProbeBatch {
		t.Fatalf("seed clamp low: %d, want %d", got, MinProbeBatch)
	}
	if got := tn.Size("huge", 10_000); got != MaxProbeBatch {
		t.Fatalf("seed clamp high: %d, want %d", got, MaxProbeBatch)
	}
}

// TestAdaptiveBatchSizingInExecutor checks the executor consults the
// tuner for the effective chunk size, reports it in ExecStats, and
// feeds observed round trips back so the size adapts for the next
// query.
func TestAdaptiveBatchSizingInExecutor(t *testing.T) {
	in, probe := batchFixture(t)
	tn := NewBatchTuner()
	// ProbeBatch 2 would ship ⌈5/2⌉ = 3 chunks; the tuner clamps the
	// seed up to MinProbeBatch = 16, so all 5 tuples fit one chunk.
	res, err := in.ExecuteOpts(mustParse(t, batchQuery),
		ExecOptions{Parallel: true, ProbeBatch: 2, Tuner: tn})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BatchProbes != 1 {
		t.Fatalf("batch probes = %d, want 1 (stats %+v)", res.Stats.BatchProbes, res.Stats)
	}
	if len(probe.batchSizes) != 1 || probe.batchSizes[0] != 5 {
		t.Fatalf("observed chunk sizes %v, want one chunk of 5", probe.batchSizes)
	}
	if got := res.Stats.BatchSizes["sql://probe"]; got != MinProbeBatch {
		t.Fatalf("ExecStats.BatchSizes = %v, want %q -> %d", res.Stats.BatchSizes, "sql://probe", MinProbeBatch)
	}
	// The in-process probe normally answers under the wire floor, so
	// the observation carries no round-trip signal and the size holds
	// (a heavily loaded machine may legitimately cross the floor once,
	// which at most doubles it — never shrinks or runs away).
	if got := tn.Size("sql://probe", 2); got != MinProbeBatch && got != 2*MinProbeBatch {
		t.Fatalf("post-query tuned size = %d, want %d (or %d under load)",
			got, MinProbeBatch, 2*MinProbeBatch)
	}

	// Results stay identical to the untuned path.
	inRef, _ := batchFixture(t)
	ref, err := inRef.ExecuteOpts(mustParse(t, batchQuery), ExecOptions{Parallel: true, ProbeBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sortedRows(res), sortedRows(ref); !equalStrings(got, want) {
		t.Fatalf("tuned rows diverge:\n got %v\nwant %v", got, want)
	}
}
