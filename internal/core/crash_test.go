package core

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"
	"time"

	"tatooine/internal/rdf"
	"tatooine/internal/relstore"
	"tatooine/internal/value"
)

const crashDirEnv = "TATOOINE_CRASH_DIR"

// TestCrashHelper is not a test: it is the workload subprocess for
// TestCrashRecoverySIGKILL, entered only when the env var is set. It
// opens a persistent saturated instance, co-locates a relstore table on
// the same store, and commits an endless sequence of paired mutations —
// each iteration inserts one row and one data triple, committed in one
// WAL transaction — reporting each committed epoch on stdout until the
// parent SIGKILLs it (no checkpoint, no close).
func TestCrashHelper(t *testing.T) {
	dir := os.Getenv(crashDirEnv)
	if dir == "" {
		t.Skip("helper mode: only runs as a subprocess of TestCrashRecoverySIGKILL")
	}
	in, err := Open(dir, WithSaturation(), WithPrefixes(map[string]string{"": "http://t.example/"}))
	if err != nil {
		fmt.Println("ERR", err)
		return
	}
	db, err := relstore.OpenDatabase(in.Store(), "d")
	if err != nil {
		fmt.Println("ERR", err)
		return
	}
	tb, err := db.CreateTable(relstore.Schema{
		Name:    "events",
		Columns: []relstore.Column{{Name: "n", Type: value.Int}},
	})
	if err != nil {
		fmt.Println("ERR", err)
		return
	}
	// Mutation 1: the schema triple (:A subClassOf :B), so every data
	// triple below derives a consequence in G∞. This commit also covers
	// the table creation above.
	in.AddTriples([]rdf.Triple{{
		S: rdf.NewIRI("http://t.example/A"),
		P: rdf.NewIRI(rdf.RDFSSubClassOf),
		O: rdf.NewIRI("http://t.example/B"),
	}})
	// Build (and persist) the materialized saturation.
	if _, err := in.Query("QUERY q(?x)\nGRAPH { ?x a <http://t.example/B> }"); err != nil {
		fmt.Println("ERR", err)
		return
	}
	for i := 1; ; i++ {
		if err := tb.Insert(value.Row{value.NewInt(int64(i))}); err != nil {
			fmt.Println("ERR", err)
			return
		}
		in.AddTriples([]rdf.Triple{{
			S: rdf.NewIRI(fmt.Sprintf("http://t.example/x%d", i)),
			P: rdf.NewIRI(rdf.RDFType),
			O: rdf.NewIRI("http://t.example/A"),
		}})
		if err := in.StoreErr(); err != nil {
			fmt.Println("ERR", err)
			return
		}
		fmt.Printf("C %d\n", in.Epoch())
	}
}

// TestCrashRecoverySIGKILL kills a workload subprocess mid-mutation —
// no checkpoint, no clean close, WAL tail possibly torn — then reopens
// the data directory and asserts the recovered state is EXACTLY the
// committed prefix: epoch e, base graph = schema + data triples
// x1..x(e-1), G∞ = the precise saturation of that base (adopted warm,
// zero recomputes), and the co-located table holding exactly e-1 rows.
func TestCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashHelper$", "-test.v")
	cmd.Env = append(os.Environ(), crashDirEnv+"="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Watch committed epochs; kill somewhere past a handful of commits.
	lastCommitted := uint64(0)
	sc := bufio.NewScanner(stdout)
	deadline := time.After(30 * time.Second)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "ERR") {
				t.Errorf("helper: %s", line)
				return
			}
			if strings.HasPrefix(line, "C ") {
				if v, err := strconv.ParseUint(line[2:], 10, 64); err == nil {
					lastCommitted = v
					if v >= 8 {
						return
					}
				}
			}
		}
	}()
	select {
	case <-done:
	case <-deadline:
		cmd.Process.Kill()
		t.Fatal("helper never reached 8 commits")
	}
	// SIGKILL: the process dies wherever it is — possibly inside a WAL
	// append — with no chance to flush or close.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	if t.Failed() {
		return
	}
	if lastCommitted < 8 {
		t.Fatalf("helper reported only %d commits", lastCommitted)
	}

	in, err := Open(dir, WithSaturation(), WithPrefixes(map[string]string{"": "http://t.example/"}))
	if err != nil {
		t.Fatalf("reopen after SIGKILL: %v", err)
	}
	defer in.Close()

	e := in.Epoch()
	if e < lastCommitted {
		t.Fatalf("recovered epoch %d < last reported committed epoch %d", e, lastCommitted)
	}
	// Base graph: the schema triple plus exactly x1..x(e-1).
	g := in.Graph()
	if got, want := g.Size(), int(e); got != want {
		t.Fatalf("recovered graph size = %d, want %d (epoch %d)", got, want, e)
	}
	typ := rdf.NewIRI(rdf.RDFType)
	clsA := rdf.NewIRI("http://t.example/A")
	for i := uint64(1); i < e; i++ {
		tr := rdf.Triple{S: rdf.NewIRI(fmt.Sprintf("http://t.example/x%d", i)), P: typ, O: clsA}
		if !g.Contains(tr) {
			t.Fatalf("committed triple x%d missing after recovery", i)
		}
	}
	if g.Contains(rdf.Triple{S: rdf.NewIRI(fmt.Sprintf("http://t.example/x%d", e)), P: typ, O: clsA}) {
		t.Fatalf("uncommitted triple x%d survived the crash", e)
	}

	// G∞ was adopted warm and is exactly the saturation of the base:
	// every xi also types :B, and nothing else was derived.
	st := in.SaturationStats()
	if st.Mode != "delta" || st.FullRecomputes != 0 {
		t.Fatalf("recovered saturation stats = %+v (want adopted, 0 recomputes)", st)
	}
	if got, want := st.Derived, int(e-1); got != want {
		t.Fatalf("recovered derived count = %d, want %d", got, want)
	}
	res, err := in.Query("QUERY q(?x)\nGRAPH { ?x a <http://t.example/B> }")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(res.Rows), int(e-1); got != want {
		t.Fatalf("saturated query rows = %d, want %d", got, want)
	}

	// The co-located table recovered to the same committed prefix.
	db, err := relstore.OpenDatabase(in.Store(), "d")
	if err != nil {
		t.Fatal(err)
	}
	tb := db.Table("events")
	if tb == nil {
		t.Fatal("events table lost after recovery")
	}
	if got, want := tb.RowCount(), int(e-1); got != want {
		t.Fatalf("recovered row count = %d, want %d", got, want)
	}
	n := int64(1)
	tb.Scan(func(r value.Row) bool {
		if r[0].Int() != n {
			t.Fatalf("row %d holds %d", n, r[0].Int())
		}
		n++
		return true
	})
}
