package core

import (
	"fmt"
	"testing"

	"tatooine/internal/rdf"
	"tatooine/internal/relstore"
	"tatooine/internal/source"
	"tatooine/internal/value"
)

func persistentInstance(t *testing.T, dir string, opts ...InstanceOption) *Instance {
	t.Helper()
	opts = append([]InstanceOption{WithPrefixes(map[string]string{"": "http://t.example/"})}, opts...)
	in, err := Open(dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestPersistentInstanceBasics(t *testing.T) {
	dir := t.TempDir()
	in := persistentInstance(t, dir)
	if !in.Persistent() {
		t.Fatal("Open returned non-persistent instance")
	}
	if in.Epoch() != 0 || in.Graph().Size() != 0 {
		t.Fatalf("fresh persistent instance: epoch=%d size=%d", in.Epoch(), in.Graph().Size())
	}
	added := in.AddTriples(rdf.MustParse(`
@prefix : <http://t.example/> .
:p1 a :politician .
:p2 a :politician .
`))
	if added != 2 || in.Epoch() != 1 {
		t.Fatalf("AddTriples: added=%d epoch=%d", added, in.Epoch())
	}
	if err := in.StoreErr(); err != nil {
		t.Fatal(err)
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}

	in2 := persistentInstance(t, dir)
	defer in2.Close()
	if in2.Epoch() != 1 {
		t.Fatalf("reopened epoch = %d, want 1", in2.Epoch())
	}
	if in2.Graph().Size() != 2 {
		t.Fatalf("reopened graph size = %d, want 2", in2.Graph().Size())
	}
	if !in2.Graph().Contains(rdf.MustParse("@prefix : <http://t.example/> .\n:p1 a :politician .")[0]) {
		t.Fatal("reopened graph missing persisted triple")
	}
	// Mutations continue the epoch sequence.
	if in2.RemoveTriples(rdf.MustParse("@prefix : <http://t.example/> .\n:p2 a :politician .")) != 1 {
		t.Fatal("reopened remove missed")
	}
	if in2.Epoch() != 2 || in2.Graph().Size() != 1 {
		t.Fatalf("after reopened remove: epoch=%d size=%d", in2.Epoch(), in2.Graph().Size())
	}
}

func TestPersistentSaturationWarmRestart(t *testing.T) {
	dir := t.TempDir()
	in := persistentInstance(t, dir, WithSaturation())
	in.AddTriples(rdf.MustParse(`
@prefix : <http://t.example/> .
:politician rdfs:subClassOf :person .
:p1 a :politician .
`))
	const q = "QUERY q(?x)\nGRAPH { ?x a :person }"
	res, err := in.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("cold query rows = %d, want 1", len(res.Rows))
	}
	st := in.SaturationStats()
	if st.FullRecomputes != 1 || st.Derived < 1 {
		t.Fatalf("cold stats = %+v", st)
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}

	in2 := persistentInstance(t, dir, WithSaturation())
	defer in2.Close()
	// Warm restart: the stored G∞ is adopted, not recomputed.
	st = in2.SaturationStats()
	if st.Mode != "delta" || st.FullRecomputes != 0 {
		t.Fatalf("warm stats = %+v (expected adopted saturation, 0 recomputes)", st)
	}
	if st.Derived < 1 {
		t.Fatalf("warm Derived = %d, want >= 1", st.Derived)
	}
	res, err = in2.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("warm query rows = %d, want 1", len(res.Rows))
	}
	if in2.SaturationStats().FullRecomputes != 0 {
		t.Fatal("warm query triggered a recompute")
	}
	// Incremental maintenance continues against the adopted G∞.
	in2.AddTriples(rdf.MustParse("@prefix : <http://t.example/> .\n:p2 a :politician ."))
	res, err = in2.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("post-mutation rows = %d, want 2", len(res.Rows))
	}
	st = in2.SaturationStats()
	if st.DeltaApplies != 1 || st.FullRecomputes != 0 {
		t.Fatalf("post-mutation stats = %+v", st)
	}
}

func TestPersistentSourceMetadata(t *testing.T) {
	dir := t.TempDir()
	in := persistentInstance(t, dir)
	db := relstore.NewDatabase("insee")
	if _, err := db.Exec("CREATE TABLE chomage (dept TEXT, taux FLOAT)"); err != nil {
		t.Fatal(err)
	}
	if err := in.AddSource(source.NewRelSource("sql://insee", db)); err != nil {
		t.Fatal(err)
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}

	in2 := persistentInstance(t, dir)
	defer in2.Close()
	metas, err := in2.PersistedSources()
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 1 || metas[0].URI != "sql://insee" || metas[0].Model != "relational" {
		t.Fatalf("persisted sources = %+v", metas)
	}
	if !in2.DropSource("sql://insee") {
		// The live source object is NOT persisted (only metadata); a
		// reopened registry starts empty.
		t.Log("source object not present after reopen (expected: metadata only)")
	}
}

// TestPersistentStoreSharedWithRelstore pins the co-location contract:
// a relstore database hung off Instance.Store() commits atomically with
// instance mutations (one WAL transaction covers both).
func TestPersistentStoreSharedWithRelstore(t *testing.T) {
	dir := t.TempDir()
	in := persistentInstance(t, dir)
	db, err := relstore.OpenDatabase(in.Store(), "d")
	if err != nil {
		t.Fatal(err)
	}
	tb, err := db.CreateTable(relstore.Schema{
		Name:    "t",
		Columns: []relstore.Column{{Name: "n", Type: value.Int}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := tb.Insert(value.Row{value.NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
		// The instance mutation's commit makes the rows durable too.
		in.AddTriples(rdf.MustParse(fmt.Sprintf("@prefix : <http://t.example/> .\n:s%d a :thing .", i)))
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}

	in2 := persistentInstance(t, dir)
	defer in2.Close()
	db2, err := relstore.OpenDatabase(in2.Store(), "d")
	if err != nil {
		t.Fatal(err)
	}
	if got := db2.Table("t").RowCount(); got != 10 {
		t.Fatalf("reopened rows = %d, want 10", got)
	}
	if in2.Epoch() != 10 || in2.Graph().Size() != 10 {
		t.Fatalf("reopened epoch=%d size=%d", in2.Epoch(), in2.Graph().Size())
	}
}
