package core

import (
	"testing"

	"tatooine/internal/rdf"
	"tatooine/internal/source"
	"tatooine/internal/xmlstore"
)

// TestGraphToXMLJoin exercises the structured-text source inside a
// mixed query (§2.1: XML sources accept XPath): find the speeches of
// the head of state by joining the custom graph with the speeches
// store on the speaker name.
func TestGraphToXMLJoin(t *testing.T) {
	g := rdf.NewGraph()
	g.AddAll(rdf.MustParse(`
@prefix : <http://t.example/> .
:POL1 :position :headOfState ;
  foaf:name "François Hollande" .
:POL2 :position :deputy ;
  foaf:name "Jean Dupont" .
`))
	in := NewInstance(g, WithPrefixes(map[string]string{"": "http://t.example/"}))

	store := xmlstore.NewStore("speeches")
	if err := store.Add("d1", []byte(`<speeches>
  <speech speaker="François Hollande" date="2016-02-27">
    <title>Discours agriculture</title><topic>agriculture</topic>
  </speech>
  <speech speaker="Jean Dupont" date="2015-11-20">
    <title>Etat d'urgence</title><topic>etat-durgence</topic>
  </speech>
  <speech speaker="François Hollande" date="2015-11-18">
    <title>Adresse au Congrès</title><topic>etat-durgence</topic>
  </speech>
</speeches>`)); err != nil {
		t.Fatal(err)
	}
	if err := in.AddSource(source.NewXMLSource("xml://speeches", store)); err != nil {
		t.Fatal(err)
	}

	res, err := in.Query(`
QUERY q(?name, ?sp, ?date, ?title)
GRAPH { ?x :position :headOfState . ?x foaf:name ?name }
FROM <xml://speeches> IN(?name) OUT(?sp, ?date, ?title)
  { XPATH /speeches/speech[@speaker=?] RETURN _id, @date, title }
ORDER BY ?date
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("head-of-state speeches: %+v", res.Rows)
	}
	if res.Rows[0][3].Str() != "Adresse au Congrès" || res.Rows[1][3].Str() != "Discours agriculture" {
		t.Errorf("order/titles: %+v", res.Rows)
	}
	if res.Stats.BindJoins != 1 {
		t.Errorf("stats: %+v", res.Stats)
	}
}

// TestXMLSourceEstimate verifies the planner gets usable estimates
// from XML sources.
func TestXMLSourceEstimate(t *testing.T) {
	store := xmlstore.NewStore("laws")
	for i := 0; i < 3; i++ {
		id := string(rune('a' + i))
		if err := store.Add(id, []byte(`<laws><law year="2015"><title>t</title></law></laws>`)); err != nil {
			t.Fatal(err)
		}
	}
	s := source.NewXMLSource("xml://laws", store)
	all := s.EstimateCost(source.SubQuery{Language: source.LangXPath,
		Text: "XPATH /laws/law RETURN _id"}, 0)
	filtered := s.EstimateCost(source.SubQuery{Language: source.LangXPath,
		Text: "XPATH /laws/law[@year='2015'] RETURN _id"}, 0)
	if all != 3 || filtered >= all {
		t.Errorf("estimates: all=%d filtered=%d", all, filtered)
	}
	if s.EstimateCost(source.SubQuery{Language: source.LangXPath, Text: "garbage"}, 0) != -1 {
		t.Error("bad query estimate should be -1")
	}
}
