package relstore

import (
	"strings"
	"testing"

	"tatooine/internal/value"
)

// electionsDB builds a small INSEE/Ministry-of-Interior style database:
// departements, election results, and agricultural production (the
// paper's running relational examples).
func electionsDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase("insee")
	mustExec := func(q string, params ...value.Value) *Result {
		t.Helper()
		res, err := db.Exec(q, params...)
		if err != nil {
			t.Fatalf("exec %q: %v", q, err)
		}
		return res
	}
	mustExec(`CREATE TABLE departements (code TEXT PRIMARY KEY, name TEXT, population INT)`)
	mustExec(`CREATE TABLE resultats (
		dept TEXT, year INT, party TEXT, votes INT,
		PRIMARY KEY (dept, year, party),
		FOREIGN KEY (dept) REFERENCES departements(code))`)
	mustExec(`INSERT INTO departements VALUES
		('75', 'Paris', 2187526),
		('92', 'Hauts-de-Seine', 1609306),
		('29', 'Finistere', 909028)`)
	mustExec(`INSERT INTO resultats VALUES
		('75', 2015, 'PS', 350000), ('75', 2015, 'LR', 420000),
		('92', 2015, 'PS', 210000), ('92', 2015, 'LR', 380000),
		('29', 2015, 'PS', 180000), ('29', 2015, 'LR', 120000),
		('75', 2012, 'PS', 500000), ('75', 2012, 'LR', 390000)`)
	return db
}

func TestCreateInsertSelect(t *testing.T) {
	db := electionsDB(t)
	res, err := db.Exec("SELECT name, population FROM departements WHERE code = '75'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "Paris" {
		t.Errorf("rows: %+v", res.Rows)
	}
	if res.Columns[0] != "name" || res.Columns[1] != "population" {
		t.Errorf("columns: %v", res.Columns)
	}
}

func TestInsertTypeChecking(t *testing.T) {
	db := NewDatabase("d")
	if _, err := db.Exec("CREATE TABLE t (n INT, s TEXT)"); err != nil {
		t.Fatal(err)
	}
	// String that parses as int is coerced.
	if _, err := db.Exec("INSERT INTO t VALUES ('42', 'ok')"); err != nil {
		t.Errorf("coercible insert: %v", err)
	}
	// Non-numeric string into INT fails.
	if _, err := db.Exec("INSERT INTO t VALUES ('abc', 'ok')"); err == nil {
		t.Error("expected type error")
	}
	// Wrong arity fails.
	if _, err := db.Exec("INSERT INTO t VALUES (1)"); err == nil {
		t.Error("expected arity error")
	}
}

func TestPrimaryKeyEnforced(t *testing.T) {
	db := electionsDB(t)
	if _, err := db.Exec(`INSERT INTO departements VALUES ('75', 'Dup', 1)`); err == nil {
		t.Error("duplicate PK accepted")
	}
	// Composite PK: same dept+year different party is fine.
	if _, err := db.Exec(`INSERT INTO resultats VALUES ('75', 2015, 'EELV', 90000)`); err != nil {
		t.Errorf("composite PK false positive: %v", err)
	}
	if _, err := db.Exec(`INSERT INTO resultats VALUES ('75', 2015, 'PS', 1)`); err == nil {
		t.Error("composite PK duplicate accepted")
	}
}

func TestForeignKeyValidation(t *testing.T) {
	db := NewDatabase("d")
	if _, err := db.Exec(`CREATE TABLE a (x INT, FOREIGN KEY (x) REFERENCES missing(y))`); err == nil {
		t.Error("FK to missing table accepted")
	}
}

func TestWherePredicates(t *testing.T) {
	db := electionsDB(t)
	cases := []struct {
		q    string
		want int
	}{
		{"SELECT * FROM resultats WHERE year = 2015", 6},
		{"SELECT * FROM resultats WHERE year = 2015 AND party = 'PS'", 3},
		{"SELECT * FROM resultats WHERE votes > 300000", 5},
		{"SELECT * FROM resultats WHERE votes BETWEEN 100000 AND 200000", 2},
		{"SELECT * FROM resultats WHERE party IN ('PS', 'EELV')", 4},
		{"SELECT * FROM resultats WHERE party NOT IN ('PS')", 4},
		{"SELECT * FROM departements WHERE name LIKE 'P%'", 1},
		{"SELECT * FROM departements WHERE name LIKE '%e%'", 2},
		{"SELECT * FROM departements WHERE name LIKE '_aris'", 1},
		{"SELECT * FROM resultats WHERE NOT year = 2015", 2},
		{"SELECT * FROM resultats WHERE year = 2012 OR party = 'LR'", 5},
	}
	for _, c := range cases {
		res, err := db.Exec(c.q)
		if err != nil {
			t.Errorf("%q: %v", c.q, err)
			continue
		}
		if len(res.Rows) != c.want {
			t.Errorf("%q: %d rows, want %d", c.q, len(res.Rows), c.want)
		}
	}
}

func TestParamSubstitution(t *testing.T) {
	db := electionsDB(t)
	res, err := db.Exec("SELECT name FROM departements WHERE code = ?", value.NewString("92"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "Hauts-de-Seine" {
		t.Errorf("param query: %+v", res.Rows)
	}
	if _, err := db.Exec("SELECT name FROM departements WHERE code = ?"); err == nil {
		t.Error("missing param accepted")
	}
}

func TestJoinHash(t *testing.T) {
	db := electionsDB(t)
	res, err := db.Exec(`SELECT d.name, r.party, r.votes
		FROM resultats r JOIN departements d ON r.dept = d.code
		WHERE r.year = 2015 ORDER BY r.votes DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("join rows: %d", len(res.Rows))
	}
	if res.Rows[0][2].Int() != 420000 || res.Rows[0][0].Str() != "Paris" {
		t.Errorf("top row: %+v", res.Rows[0])
	}
}

func TestLeftJoin(t *testing.T) {
	db := NewDatabase("d")
	for _, q := range []string{
		"CREATE TABLE a (id INT, name TEXT)",
		"CREATE TABLE b (aid INT, label TEXT)",
		"INSERT INTO a VALUES (1, 'one'), (2, 'two'), (3, 'three')",
		"INSERT INTO b VALUES (1, 'x'), (1, 'y')",
	} {
		if _, err := db.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.Exec(`SELECT a.name, b.label FROM a LEFT JOIN b ON a.id = b.aid ORDER BY a.id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("left join rows: %d: %+v", len(res.Rows), res.Rows)
	}
	// Rows for id 2 and 3 must have NULL labels.
	nulls := 0
	for _, r := range res.Rows {
		if r[1].IsNull() {
			nulls++
		}
	}
	if nulls != 2 {
		t.Errorf("null-padded rows: %d, want 2", nulls)
	}
}

func TestNestedLoopJoinNonEqui(t *testing.T) {
	db := electionsDB(t)
	res, err := db.Exec(`SELECT d.name FROM departements d
		JOIN resultats r ON r.votes > d.population`)
	if err != nil {
		t.Fatal(err)
	}
	// Finistere pop 909028: no votes exceed it; others are larger. Actually
	// votes max 500000 < min population 909028, so empty.
	if len(res.Rows) != 0 {
		t.Errorf("non-equi join rows: %d", len(res.Rows))
	}
}

func TestGroupByAggregates(t *testing.T) {
	db := electionsDB(t)
	res, err := db.Exec(`SELECT party, SUM(votes) AS total, COUNT(*) AS n, AVG(votes) AS mean,
		MIN(votes) AS lo, MAX(votes) AS hi
		FROM resultats WHERE year = 2015 GROUP BY party ORDER BY total DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("groups: %d", len(res.Rows))
	}
	lr := res.Rows[0]
	if lr[0].Str() != "LR" || lr[1].Int() != 920000 || lr[2].Int() != 3 {
		t.Errorf("LR row: %+v", lr)
	}
	if lr[4].Int() != 120000 || lr[5].Int() != 420000 {
		t.Errorf("min/max: %+v", lr)
	}
	mean := lr[3].Float()
	if mean < 306666 || mean > 306667 {
		t.Errorf("avg: %v", mean)
	}
}

func TestHaving(t *testing.T) {
	db := electionsDB(t)
	res, err := db.Exec(`SELECT dept, COUNT(*) AS n FROM resultats
		GROUP BY dept HAVING COUNT(*) > 2 ORDER BY n DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "75" {
		t.Errorf("having: %+v", res.Rows)
	}
}

func TestGlobalAggregateWithoutGroupBy(t *testing.T) {
	db := electionsDB(t)
	res, err := db.Exec(`SELECT COUNT(*), SUM(votes) FROM resultats`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 8 {
		t.Errorf("global agg: %+v", res.Rows)
	}
}

func TestCountDistinct(t *testing.T) {
	db := electionsDB(t)
	res, err := db.Exec(`SELECT COUNT(DISTINCT party) FROM resultats`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 2 {
		t.Errorf("count distinct: %+v", res.Rows[0])
	}
}

func TestDistinctRows(t *testing.T) {
	db := electionsDB(t)
	res, err := db.Exec(`SELECT DISTINCT party FROM resultats ORDER BY party`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].Str() != "LR" {
		t.Errorf("distinct: %+v", res.Rows)
	}
}

func TestOrderByMultipleKeysAndOffset(t *testing.T) {
	db := electionsDB(t)
	res, err := db.Exec(`SELECT dept, year, votes FROM resultats
		ORDER BY year DESC, votes ASC LIMIT 3 OFFSET 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	if res.Rows[0][1].Int() != 2015 || res.Rows[0][2].Int() != 180000 {
		t.Errorf("offset row: %+v", res.Rows[0])
	}
}

func TestOrderByUnprojectedColumn(t *testing.T) {
	db := electionsDB(t)
	res, err := db.Exec(`SELECT name FROM departements ORDER BY population DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Str() != "Paris" || res.Rows[2][0].Str() != "Finistere" {
		t.Errorf("order by unprojected: %+v", res.Rows)
	}
}

func TestScalarFunctions(t *testing.T) {
	db := electionsDB(t)
	res, err := db.Exec(`SELECT LOWER(name), UPPER(code), LENGTH(name) FROM departements WHERE code = '29'`)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Rows[0]
	if r[0].Str() != "finistere" || r[1].Str() != "29" || r[2].Int() != 9 {
		t.Errorf("functions: %+v", r)
	}
}

func TestArithmeticProjection(t *testing.T) {
	db := electionsDB(t)
	res, err := db.Exec(`SELECT votes * 2 AS double, votes / 1000 FROM resultats WHERE dept = '29' AND party = 'LR'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 240000 {
		t.Errorf("arith: %+v", res.Rows[0])
	}
	if res.Rows[0][1].Float() != 120 {
		t.Errorf("div: %+v", res.Rows[0])
	}
}

func TestDivisionByZero(t *testing.T) {
	db := electionsDB(t)
	if _, err := db.Exec("SELECT votes / 0 FROM resultats"); err == nil {
		t.Error("division by zero accepted")
	}
}

func TestAmbiguousColumn(t *testing.T) {
	db := NewDatabase("d")
	db.Exec("CREATE TABLE a (id INT)")
	db.Exec("CREATE TABLE b (id INT)")
	db.Exec("INSERT INTO a VALUES (1)")
	db.Exec("INSERT INTO b VALUES (1)")
	if _, err := db.Exec("SELECT id FROM a JOIN b ON a.id = b.id"); err == nil ||
		!strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("ambiguous column: %v", err)
	}
}

func TestUnknownTableAndColumn(t *testing.T) {
	db := electionsDB(t)
	if _, err := db.Exec("SELECT x FROM nope"); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := db.Exec("SELECT nope FROM departements"); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestIndexLookup(t *testing.T) {
	db := electionsDB(t)
	tbl := db.Table("resultats")
	if err := tbl.CreateIndex("dept"); err != nil {
		t.Fatal(err)
	}
	if !tbl.HasIndex("dept") {
		t.Error("index not registered")
	}
	rows, ok := tbl.LookupIndex("dept", value.NewString("75"))
	if !ok || len(rows) != 4 {
		t.Errorf("index lookup: ok=%v n=%d", ok, len(rows))
	}
	// Index stays consistent after further inserts.
	if _, err := db.Exec(`INSERT INTO resultats VALUES ('75', 2017, 'LREM', 600000)`); err != nil {
		t.Fatal(err)
	}
	rows, _ = tbl.LookupIndex("dept", value.NewString("75"))
	if len(rows) != 5 {
		t.Errorf("index after insert: %d", len(rows))
	}
}

func TestDistinctValues(t *testing.T) {
	db := electionsDB(t)
	vals, err := db.Table("resultats").DistinctValues("party")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || vals[0].Str() != "LR" || vals[1].Str() != "PS" {
		t.Errorf("distinct values: %v", vals)
	}
}

func TestTableScanEarlyStop(t *testing.T) {
	db := electionsDB(t)
	n := 0
	db.Table("resultats").Scan(func(value.Row) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("scan visited %d", n)
	}
}

func TestIsNull(t *testing.T) {
	db := NewDatabase("d")
	db.Exec("CREATE TABLE t (a INT, b TEXT)")
	db.Exec("INSERT INTO t (a) VALUES (1)")
	db.Exec("INSERT INTO t VALUES (2, 'x')")
	res, err := db.Exec("SELECT a FROM t WHERE b IS NULL")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 1 {
		t.Errorf("is null: %+v", res.Rows)
	}
	res, _ = db.Exec("SELECT a FROM t WHERE b IS NOT NULL")
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 2 {
		t.Errorf("is not null: %+v", res.Rows)
	}
}

func TestNullComparisonsAreFalse(t *testing.T) {
	db := NewDatabase("d")
	db.Exec("CREATE TABLE t (a INT)")
	db.Exec("INSERT INTO t (a) VALUES (1)")
	db.Exec("INSERT INTO t VALUES (NULL)")
	for _, q := range []string{
		"SELECT a FROM t WHERE a = NULL",
		"SELECT a FROM t WHERE a != NULL",
		"SELECT a FROM t WHERE a > NULL",
	} {
		res, err := db.Exec(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 0 {
			t.Errorf("%q: %d rows, want 0", q, len(res.Rows))
		}
	}
}

func TestImportCSV(t *testing.T) {
	db := NewDatabase("d")
	csv := `code,name,population
75,Paris,2187526
92,Hauts-de-Seine,1609306
2A,Corse-du-Sud,158507
`
	tbl, err := db.ImportCSVString("departements", csv)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.RowCount() != 3 {
		t.Fatalf("rows: %d", tbl.RowCount())
	}
	schema := tbl.Schema()
	// "code" column mixes ints and "2A" → must fall back to TEXT? No:
	// inference sees 75 first (Int), then 2A (String) → String.
	if schema.Columns[0].Type != value.String {
		t.Errorf("code type: %v", schema.Columns[0].Type)
	}
	if schema.Columns[2].Type != value.Int {
		t.Errorf("population type: %v", schema.Columns[2].Type)
	}
	res, err := db.Exec("SELECT name FROM departements WHERE code = '2A'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "Corse-du-Sud" {
		t.Errorf("csv query: %+v", res.Rows)
	}
}

func TestImportCSVEmptyCellsAreNull(t *testing.T) {
	db := NewDatabase("d")
	tbl, err := db.ImportCSVString("t", "a,b\n1,\n2,x\n")
	if err != nil {
		t.Fatal(err)
	}
	rows := tbl.Rows()
	if !rows[0][1].IsNull() {
		t.Error("empty cell should be NULL")
	}
}

func TestLikeMatcher(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h__lo", true}, // _ matches 'e' and 'l'
		{"hela", "h__lo", false},
		{"hello", "", false},
		{"", "%", true},
		{"abc", "%%", true},
		{"abc", "a%b%c", true},
		{"axbyc", "a%b%c", true},
		{"ac", "a%b%c", false},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q,%q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

func TestConcurrentInsertAndScan(t *testing.T) {
	db := NewDatabase("d")
	if _, err := db.Exec("CREATE TABLE t (n INT)"); err != nil {
		t.Fatal(err)
	}
	tbl := db.Table("t")
	done := make(chan error, 8)
	for i := 0; i < 4; i++ {
		go func(base int) {
			for j := 0; j < 50; j++ {
				if err := tbl.Insert(value.Row{value.NewInt(int64(base*50 + j))}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(i)
	}
	for i := 0; i < 4; i++ {
		go func() {
			tbl.Scan(func(value.Row) bool { return true })
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if tbl.RowCount() != 200 {
		t.Errorf("rows: %d", tbl.RowCount())
	}
}
