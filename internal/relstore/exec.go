package relstore

import (
	"fmt"
	"sort"
	"strings"

	"tatooine/internal/sqlparse"
	"tatooine/internal/value"
)

// Result is a query result: named columns and rows.
type Result struct {
	Columns []string
	Rows    []value.Row
}

// Exec parses and executes one SQL statement against db. Positional '?'
// parameters are substituted from params in order.
func (db *Database) Exec(query string, params ...value.Value) (*Result, error) {
	stmt, err := sqlparse.Parse(query)
	if err != nil {
		return nil, err
	}
	return db.ExecStmt(stmt, params...)
}

// ExecStmt executes a parsed statement.
func (db *Database) ExecStmt(stmt sqlparse.Statement, params ...value.Value) (*Result, error) {
	switch s := stmt.(type) {
	case *sqlparse.CreateTableStmt:
		return db.execCreate(s)
	case *sqlparse.InsertStmt:
		return db.execInsert(s, params)
	case *sqlparse.SelectStmt:
		return db.execSelect(s, params)
	default:
		return nil, fmt.Errorf("relstore: unsupported statement %T", stmt)
	}
}

func (db *Database) execCreate(s *sqlparse.CreateTableStmt) (*Result, error) {
	schema := Schema{Name: s.Table, PrimaryKey: s.PrimaryKey}
	for _, c := range s.Columns {
		schema.Columns = append(schema.Columns, Column{Name: c.Name, Type: c.Type})
	}
	for _, fk := range s.ForeignKeys {
		schema.ForeignKeys = append(schema.ForeignKeys, ForeignKey{fk.Column, fk.RefTable, fk.RefColumn})
	}
	if _, err := db.CreateTable(schema); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

func (db *Database) execInsert(s *sqlparse.InsertStmt, params []value.Value) (*Result, error) {
	t := db.Table(s.Table)
	if t == nil {
		return nil, fmt.Errorf("relstore: unknown table %q", s.Table)
	}
	schema := t.Schema()
	cols := s.Columns
	if len(cols) == 0 {
		for _, c := range schema.Columns {
			cols = append(cols, c.Name)
		}
	}
	inserted := 0
	for _, exprRow := range s.Rows {
		if len(exprRow) != len(cols) {
			return nil, fmt.Errorf("relstore: INSERT row has %d values for %d columns", len(exprRow), len(cols))
		}
		row := make(value.Row, len(schema.Columns))
		for i := range row {
			row[i] = value.NewNull()
		}
		for i, col := range cols {
			ci := schema.ColumnIndex(col)
			if ci < 0 {
				return nil, fmt.Errorf("relstore: table %s: no column %q", s.Table, col)
			}
			v, err := evalConstExpr(exprRow[i], params)
			if err != nil {
				return nil, err
			}
			row[ci] = v
		}
		if err := t.Insert(row); err != nil {
			return nil, err
		}
		inserted++
	}
	return &Result{Columns: []string{"inserted"}, Rows: []value.Row{{value.NewInt(int64(inserted))}}}, nil
}

// evalConstExpr evaluates an expression with no column references.
func evalConstExpr(e sqlparse.Expr, params []value.Value) (value.Value, error) {
	emptyEnv := &env{}
	return evalExpr(e, emptyEnv, nil, params)
}

// ---------- SELECT machinery ----------

// env maps qualified/unqualified column names to positions in the
// working row, which is the concatenation of all joined tables' columns.
type env struct {
	cols []envCol
}

type envCol struct {
	binding string // table alias or name (lower-cased)
	name    string // column name (lower-cased)
}

func (e *env) addTable(binding string, schema Schema) {
	b := strings.ToLower(binding)
	for _, c := range schema.Columns {
		e.cols = append(e.cols, envCol{binding: b, name: strings.ToLower(c.Name)})
	}
}

// resolve returns the row position for a column reference.
func (e *env) resolve(ref *sqlparse.ColumnRef) (int, error) {
	tbl := strings.ToLower(ref.Table)
	name := strings.ToLower(ref.Column)
	found := -1
	for i, c := range e.cols {
		if c.name != name {
			continue
		}
		if tbl != "" && c.binding != tbl {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("relstore: ambiguous column %q", ref.String())
		}
		found = i
	}
	if found < 0 {
		return 0, fmt.Errorf("relstore: unknown column %q", ref.String())
	}
	return found, nil
}

func (db *Database) execSelect(s *sqlparse.SelectStmt, params []value.Value) (*Result, error) {
	base := db.Table(s.From.Name)
	if base == nil {
		return nil, fmt.Errorf("relstore: unknown table %q", s.From.Name)
	}
	refs := selectStmtRefs(s)
	workEnv := &env{}
	workEnv.addTable(s.From.Binding(), base.Schema())
	rows := base.RowsProject(neededColumns(s, refs, s.From.Binding(), base.Schema()))

	// Joins, in declaration order.
	for _, j := range s.Joins {
		t := db.Table(j.Table.Name)
		if t == nil {
			return nil, fmt.Errorf("relstore: unknown table %q", j.Table.Name)
		}
		var err error
		need := neededColumns(s, refs, j.Table.Binding(), t.Schema())
		rows, err = joinRows(rows, workEnv, t, need, j, params)
		if err != nil {
			return nil, err
		}
		workEnv.addTable(j.Table.Binding(), t.Schema())
	}

	// WHERE.
	if s.Where != nil {
		filtered := rows[:0]
		for _, r := range rows {
			ok, err := evalBool(s.Where, workEnv, r, params)
			if err != nil {
				return nil, err
			}
			if ok {
				filtered = append(filtered, r)
			}
		}
		rows = filtered
	}

	// Projection plan.
	items := s.Columns
	if s.Star {
		// Expand '*' into every column of the env in order.
		for _, c := range workEnv.cols {
			items = append(items, sqlparse.SelectItem{
				Expr: &sqlparse.ColumnRef{Table: c.binding, Column: c.name},
			})
		}
	}

	grouped := len(s.GroupBy) > 0 || s.Having != nil
	for _, it := range items {
		if sqlparse.HasAggregate(it.Expr) {
			grouped = true
		}
	}

	var outRows []value.Row
	if grouped {
		var err error
		outRows, err = evalGrouped(s, items, workEnv, rows, params)
		if err != nil {
			return nil, err
		}
	} else {
		for _, r := range rows {
			out := make(value.Row, len(items))
			for i, it := range items {
				v, err := evalExpr(it.Expr, workEnv, r, params)
				if err != nil {
					return nil, err
				}
				out[i] = v
			}
			outRows = append(outRows, out)
		}
	}

	// Column names.
	names := make([]string, len(items))
	for i, it := range items {
		switch {
		case it.Alias != "":
			names[i] = it.Alias
		default:
			if ref, ok := it.Expr.(*sqlparse.ColumnRef); ok {
				names[i] = ref.Column
			} else {
				names[i] = sqlparse.ExprString(it.Expr)
			}
		}
	}

	// DISTINCT.
	if s.Distinct {
		seen := make(map[string]struct{}, len(outRows))
		dedup := outRows[:0]
		for _, r := range outRows {
			k := r.Key()
			if _, ok := seen[k]; ok {
				continue
			}
			seen[k] = struct{}{}
			dedup = append(dedup, r)
		}
		outRows = dedup
	}

	// ORDER BY: keys may reference output aliases or input columns. For
	// grouped queries only output aliases/positions are supported.
	if len(s.OrderBy) > 0 {
		if err := sortRows(s, items, names, workEnv, &outRows, rows, grouped, params); err != nil {
			return nil, err
		}
	}

	// OFFSET / LIMIT.
	if s.Offset > 0 {
		if s.Offset >= len(outRows) {
			outRows = nil
		} else {
			outRows = outRows[s.Offset:]
		}
	}
	if s.Limit >= 0 && s.Limit < len(outRows) {
		outRows = outRows[:s.Limit]
	}

	return &Result{Columns: names, Rows: outRows}, nil
}

// sortRows orders the projected rows. Order keys resolve against output
// column names first, then (for non-grouped queries) against the input
// env, re-evaluating on the source row. Because projection may reorder
// or drop source columns, non-grouped sorting pairs output rows with
// their source rows.
func sortRows(s *sqlparse.SelectStmt, items []sqlparse.SelectItem, names []string,
	workEnv *env, outRows *[]value.Row, srcRows []value.Row, grouped bool,
	params []value.Value) error {

	type keyed struct {
		out  value.Row
		keys value.Row
	}
	rows := *outRows
	ks := make([]keyed, len(rows))

	outIndex := func(e sqlparse.Expr) int {
		ref, ok := e.(*sqlparse.ColumnRef)
		if !ok || ref.Table != "" {
			return -1
		}
		for i, n := range names {
			if strings.EqualFold(n, ref.Column) {
				return i
			}
		}
		return -1
	}

	for i := range rows {
		keys := make(value.Row, len(s.OrderBy))
		for j, ob := range s.OrderBy {
			if oi := outIndex(ob.Expr); oi >= 0 {
				keys[j] = rows[i][oi]
				continue
			}
			if grouped {
				return fmt.Errorf("relstore: ORDER BY key %q must reference an output column in grouped query",
					sqlparse.ExprString(ob.Expr))
			}
			if len(srcRows) != len(rows) {
				return fmt.Errorf("relstore: internal: source/output row count mismatch in ORDER BY")
			}
			v, err := evalExpr(ob.Expr, workEnv, srcRows[i], params)
			if err != nil {
				return err
			}
			keys[j] = v
		}
		ks[i] = keyed{out: rows[i], keys: keys}
	}
	sort.SliceStable(ks, func(a, b int) bool {
		for j, ob := range s.OrderBy {
			c, _ := value.Compare(ks[a].keys[j], ks[b].keys[j])
			if c == 0 {
				continue
			}
			if ob.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	for i := range ks {
		rows[i] = ks[i].out
	}
	*outRows = rows
	return nil
}

// selectStmtRefs collects every column reference the statement can
// evaluate: projection items, join conditions, WHERE, GROUP BY, HAVING
// and ORDER BY keys.
func selectStmtRefs(s *sqlparse.SelectStmt) []*sqlparse.ColumnRef {
	var refs []*sqlparse.ColumnRef
	for _, it := range s.Columns {
		sqlparse.ColumnRefs(it.Expr, &refs)
	}
	for _, j := range s.Joins {
		sqlparse.ColumnRefs(j.On, &refs)
	}
	sqlparse.ColumnRefs(s.Where, &refs)
	for _, ge := range s.GroupBy {
		sqlparse.ColumnRefs(ge, &refs)
	}
	sqlparse.ColumnRefs(s.Having, &refs)
	for _, ob := range s.OrderBy {
		sqlparse.ColumnRefs(ob.Expr, &refs)
	}
	return refs
}

// neededColumns returns the pruning mask for a table bound as binding:
// need[i] is true when some collected reference names column i, either
// qualified by this binding or unqualified (an unqualified name is
// conservatively charged to every table that has the column, since
// resolution happens later). SELECT * disables pruning (nil mask).
func neededColumns(s *sqlparse.SelectStmt, refs []*sqlparse.ColumnRef, binding string, schema Schema) []bool {
	if s.Star {
		return nil
	}
	b := strings.ToLower(binding)
	need := make([]bool, len(schema.Columns))
	for _, ref := range refs {
		if t := strings.ToLower(ref.Table); t != "" && t != b {
			continue
		}
		if ci := schema.ColumnIndex(ref.Column); ci >= 0 {
			need[ci] = true
		}
	}
	return need
}

// joinRows joins the working rows with table t under clause j. Equi-join
// conditions between an existing env column and a new table column use a
// hash join; anything else falls back to a nested loop. need prunes the
// columns materialized from t (nil = all).
func joinRows(left []value.Row, leftEnv *env, t *Table, need []bool, j sqlparse.JoinClause, params []value.Value) ([]value.Row, error) {
	rightSchema := t.Schema()
	rightRows := t.RowsProject(need)
	rightWidth := len(rightSchema.Columns)

	// Build the post-join env for evaluating the ON condition.
	joined := &env{cols: append([]envCol(nil), leftEnv.cols...)}
	joined.addTable(j.Table.Binding(), rightSchema)

	// Detect a single equi-join "leftcol = rightcol".
	leftPos, rightPos := detectEqui(j.On, leftEnv, joined, len(leftEnv.cols))

	var out []value.Row
	emit := func(l, r value.Row) error {
		combined := make(value.Row, 0, len(l)+rightWidth)
		combined = append(combined, l...)
		combined = append(combined, r...)
		ok, err := evalBool(j.On, joined, combined, params)
		if err != nil {
			return err
		}
		if ok {
			out = append(out, combined)
		}
		return nil
	}

	nullRight := make(value.Row, rightWidth)
	for i := range nullRight {
		nullRight[i] = value.NewNull()
	}

	if leftPos >= 0 && rightPos >= 0 {
		// Hash join on the equi columns.
		ht := make(map[string][]value.Row, len(rightRows))
		for _, r := range rightRows {
			k := r[rightPos].Key()
			ht[k] = append(ht[k], r)
		}
		for _, l := range left {
			before := len(out)
			if !l[leftPos].IsNull() {
				for _, r := range ht[l[leftPos].Key()] {
					if err := emit(l, r); err != nil {
						return nil, err
					}
				}
			}
			if j.Left && len(out) == before {
				combined := make(value.Row, 0, len(l)+rightWidth)
				combined = append(combined, l...)
				combined = append(combined, nullRight...)
				out = append(out, combined)
			}
		}
		return out, nil
	}

	// Nested loop.
	for _, l := range left {
		before := len(out)
		for _, r := range rightRows {
			if err := emit(l, r); err != nil {
				return nil, err
			}
		}
		if j.Left && len(out) == before {
			combined := make(value.Row, 0, len(l)+rightWidth)
			combined = append(combined, l...)
			combined = append(combined, nullRight...)
			out = append(out, combined)
		}
	}
	return out, nil
}

// detectEqui recognizes ON conditions of the form L = R where one side
// resolves inside the pre-join env and the other in the appended table.
// It returns row positions, or (-1, -1) when not applicable.
func detectEqui(on sqlparse.Expr, leftEnv, joined *env, leftWidth int) (int, int) {
	be, ok := on.(*sqlparse.BinaryExpr)
	if !ok || be.Op != sqlparse.OpEq {
		return -1, -1
	}
	lref, lok := be.Left.(*sqlparse.ColumnRef)
	rref, rok := be.Right.(*sqlparse.ColumnRef)
	if !lok || !rok {
		return -1, -1
	}
	lp, lerr := joined.resolve(lref)
	rp, rerr := joined.resolve(rref)
	if lerr != nil || rerr != nil {
		return -1, -1
	}
	switch {
	case lp < leftWidth && rp >= leftWidth:
		return lp, rp - leftWidth
	case rp < leftWidth && lp >= leftWidth:
		return rp, lp - leftWidth
	default:
		return -1, -1
	}
}

// evalGrouped evaluates grouped/aggregated projection.
func evalGrouped(s *sqlparse.SelectStmt, items []sqlparse.SelectItem, workEnv *env,
	rows []value.Row, params []value.Value) ([]value.Row, error) {

	type group struct {
		keyRow value.Row // representative row
		rows   []value.Row
	}
	var groups []*group
	if len(s.GroupBy) == 0 {
		// A single global group (possibly empty input).
		groups = []*group{{rows: rows}}
		if len(rows) > 0 {
			groups[0].keyRow = rows[0]
		}
	} else {
		byKey := make(map[string]*group)
		var order []string
		for _, r := range rows {
			keys := make(value.Row, len(s.GroupBy))
			for i, ge := range s.GroupBy {
				v, err := evalExpr(ge, workEnv, r, params)
				if err != nil {
					return nil, err
				}
				keys[i] = v
			}
			k := keys.Key()
			grp, ok := byKey[k]
			if !ok {
				grp = &group{keyRow: r}
				byKey[k] = grp
				order = append(order, k)
			}
			grp.rows = append(grp.rows, r)
		}
		for _, k := range order {
			groups = append(groups, byKey[k])
		}
	}

	var out []value.Row
	for _, grp := range groups {
		if s.Having != nil {
			if grp.keyRow == nil {
				continue
			}
			ok, err := evalBoolGrouped(s.Having, workEnv, grp.keyRow, grp.rows, params)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		row := make(value.Row, len(items))
		for i, it := range items {
			rep := grp.keyRow
			v, err := evalGroupExpr(it.Expr, workEnv, rep, grp.rows, params)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		out = append(out, row)
	}
	return out, nil
}

func evalBoolGrouped(e sqlparse.Expr, en *env, rep value.Row, rows []value.Row, params []value.Value) (bool, error) {
	v, err := evalGroupExpr(e, en, rep, rows, params)
	if err != nil {
		return false, err
	}
	return v.Kind() == value.Bool && v.Bool(), nil
}

// evalGroupExpr evaluates an expression in grouped context: AggExpr
// nodes aggregate over the group's rows; everything else evaluates on
// the representative row.
func evalGroupExpr(e sqlparse.Expr, en *env, rep value.Row, rows []value.Row, params []value.Value) (value.Value, error) {
	switch x := e.(type) {
	case *sqlparse.AggExpr:
		return evalAggregate(x, en, rows, params)
	case *sqlparse.BinaryExpr:
		if sqlparse.HasAggregate(x) {
			l, err := evalGroupExpr(x.Left, en, rep, rows, params)
			if err != nil {
				return value.Value{}, err
			}
			r, err := evalGroupExpr(x.Right, en, rep, rows, params)
			if err != nil {
				return value.Value{}, err
			}
			return applyBinary(x.Op, l, r)
		}
	}
	if rep == nil {
		return value.NewNull(), nil
	}
	return evalExpr(e, en, rep, params)
}

func evalAggregate(agg *sqlparse.AggExpr, en *env, rows []value.Row, params []value.Value) (value.Value, error) {
	if agg.Arg == nil { // COUNT(*)
		return value.NewInt(int64(len(rows))), nil
	}
	var vals []value.Value
	seen := make(map[string]struct{})
	for _, r := range rows {
		v, err := evalExpr(agg.Arg, en, r, params)
		if err != nil {
			return value.Value{}, err
		}
		if v.IsNull() {
			continue
		}
		if agg.Distinct {
			k := v.Key()
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
		}
		vals = append(vals, v)
	}
	switch agg.Func {
	case sqlparse.AggCount:
		return value.NewInt(int64(len(vals))), nil
	case sqlparse.AggSum, sqlparse.AggAvg:
		if len(vals) == 0 {
			return value.NewNull(), nil
		}
		isFloat := false
		var sumI int64
		var sumF float64
		for _, v := range vals {
			switch v.Kind() {
			case value.Int:
				sumI += v.Int()
				sumF += v.Float()
			case value.Float:
				isFloat = true
				sumF += v.Float()
			default:
				return value.Value{}, fmt.Errorf("relstore: %s over non-numeric value %s", agg.Func, v)
			}
		}
		if agg.Func == sqlparse.AggAvg {
			return value.NewFloat(sumF / float64(len(vals))), nil
		}
		if isFloat {
			return value.NewFloat(sumF), nil
		}
		return value.NewInt(sumI), nil
	case sqlparse.AggMin, sqlparse.AggMax:
		if len(vals) == 0 {
			return value.NewNull(), nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c, _ := value.Compare(v, best)
			if (agg.Func == sqlparse.AggMin && c < 0) || (agg.Func == sqlparse.AggMax && c > 0) {
				best = v
			}
		}
		return best, nil
	default:
		return value.Value{}, fmt.Errorf("relstore: unsupported aggregate %v", agg.Func)
	}
}

// ---------- expression evaluation ----------

func evalBool(e sqlparse.Expr, en *env, row value.Row, params []value.Value) (bool, error) {
	v, err := evalExpr(e, en, row, params)
	if err != nil {
		return false, err
	}
	return v.Kind() == value.Bool && v.Bool(), nil
}

func evalExpr(e sqlparse.Expr, en *env, row value.Row, params []value.Value) (value.Value, error) {
	switch x := e.(type) {
	case *sqlparse.Literal:
		return x.Val, nil
	case *sqlparse.Param:
		if x.Index >= len(params) {
			return value.Value{}, fmt.Errorf("relstore: missing parameter %d", x.Index)
		}
		return params[x.Index], nil
	case *sqlparse.ColumnRef:
		pos, err := en.resolve(x)
		if err != nil {
			return value.Value{}, err
		}
		if pos >= len(row) {
			return value.Value{}, fmt.Errorf("relstore: internal: column position out of range")
		}
		return row[pos], nil
	case *sqlparse.BinaryExpr:
		l, err := evalExpr(x.Left, en, row, params)
		if err != nil {
			return value.Value{}, err
		}
		// Short-circuit AND/OR.
		if x.Op == sqlparse.OpAnd && !(l.Kind() == value.Bool && l.Bool()) {
			return value.NewBool(false), nil
		}
		if x.Op == sqlparse.OpOr && l.Kind() == value.Bool && l.Bool() {
			return value.NewBool(true), nil
		}
		r, err := evalExpr(x.Right, en, row, params)
		if err != nil {
			return value.Value{}, err
		}
		return applyBinary(x.Op, l, r)
	case *sqlparse.NotExpr:
		v, err := evalExpr(x.Inner, en, row, params)
		if err != nil {
			return value.Value{}, err
		}
		return value.NewBool(!(v.Kind() == value.Bool && v.Bool())), nil
	case *sqlparse.IsNullExpr:
		v, err := evalExpr(x.Inner, en, row, params)
		if err != nil {
			return value.Value{}, err
		}
		return value.NewBool(v.IsNull() != x.Negate), nil
	case *sqlparse.InExpr:
		needle, err := evalExpr(x.Needle, en, row, params)
		if err != nil {
			return value.Value{}, err
		}
		found := false
		for _, le := range x.List {
			v, err := evalExpr(le, en, row, params)
			if err != nil {
				return value.Value{}, err
			}
			if value.Equal(needle, v) {
				found = true
				break
			}
		}
		return value.NewBool(found != x.Negate), nil
	case *sqlparse.BetweenExpr:
		v, err := evalExpr(x.X, en, row, params)
		if err != nil {
			return value.Value{}, err
		}
		lo, err := evalExpr(x.Lo, en, row, params)
		if err != nil {
			return value.Value{}, err
		}
		hi, err := evalExpr(x.Hi, en, row, params)
		if err != nil {
			return value.Value{}, err
		}
		cLo, _ := value.Compare(v, lo)
		cHi, _ := value.Compare(v, hi)
		in := cLo >= 0 && cHi <= 0 && !v.IsNull()
		return value.NewBool(in != x.Negate), nil
	case *sqlparse.FuncExpr:
		return evalFunc(x, en, row, params)
	case *sqlparse.AggExpr:
		return value.Value{}, fmt.Errorf("relstore: aggregate %s outside grouped context", x.Func)
	default:
		return value.Value{}, fmt.Errorf("relstore: unsupported expression %T", e)
	}
}

func applyBinary(op sqlparse.BinaryOp, l, r value.Value) (value.Value, error) {
	switch op {
	case sqlparse.OpAnd:
		return value.NewBool(l.Kind() == value.Bool && l.Bool() && r.Kind() == value.Bool && r.Bool()), nil
	case sqlparse.OpOr:
		return value.NewBool((l.Kind() == value.Bool && l.Bool()) || (r.Kind() == value.Bool && r.Bool())), nil
	case sqlparse.OpEq:
		return value.NewBool(value.Equal(l, r)), nil
	case sqlparse.OpNe:
		if l.IsNull() || r.IsNull() {
			return value.NewBool(false), nil
		}
		return value.NewBool(!value.Equal(l, r)), nil
	case sqlparse.OpLt, sqlparse.OpLe, sqlparse.OpGt, sqlparse.OpGe:
		if l.IsNull() || r.IsNull() {
			return value.NewBool(false), nil
		}
		c, ok := value.Compare(l, r)
		if !ok {
			return value.NewBool(false), nil
		}
		switch op {
		case sqlparse.OpLt:
			return value.NewBool(c < 0), nil
		case sqlparse.OpLe:
			return value.NewBool(c <= 0), nil
		case sqlparse.OpGt:
			return value.NewBool(c > 0), nil
		default:
			return value.NewBool(c >= 0), nil
		}
	case sqlparse.OpLike:
		if l.Kind() != value.String || r.Kind() != value.String {
			return value.NewBool(false), nil
		}
		return value.NewBool(likeMatch(l.Str(), r.Str())), nil
	case sqlparse.OpAdd, sqlparse.OpSub, sqlparse.OpMul, sqlparse.OpDiv:
		if l.IsNull() || r.IsNull() {
			return value.NewNull(), nil
		}
		if op == sqlparse.OpAdd && l.Kind() == value.String && r.Kind() == value.String {
			return value.NewString(l.Str() + r.Str()), nil
		}
		lf, rf := l.Float(), r.Float()
		bothInt := l.Kind() == value.Int && r.Kind() == value.Int
		switch op {
		case sqlparse.OpAdd:
			if bothInt {
				return value.NewInt(l.Int() + r.Int()), nil
			}
			return value.NewFloat(lf + rf), nil
		case sqlparse.OpSub:
			if bothInt {
				return value.NewInt(l.Int() - r.Int()), nil
			}
			return value.NewFloat(lf - rf), nil
		case sqlparse.OpMul:
			if bothInt {
				return value.NewInt(l.Int() * r.Int()), nil
			}
			return value.NewFloat(lf * rf), nil
		default:
			if rf == 0 {
				return value.Value{}, fmt.Errorf("relstore: division by zero")
			}
			return value.NewFloat(lf / rf), nil
		}
	default:
		return value.Value{}, fmt.Errorf("relstore: unsupported operator %v", op)
	}
}

func evalFunc(f *sqlparse.FuncExpr, en *env, row value.Row, params []value.Value) (value.Value, error) {
	args := make([]value.Value, len(f.Args))
	for i, a := range f.Args {
		v, err := evalExpr(a, en, row, params)
		if err != nil {
			return value.Value{}, err
		}
		args[i] = v
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("relstore: %s expects %d argument(s), got %d", f.Name, n, len(args))
		}
		return nil
	}
	switch f.Name {
	case "LOWER":
		if err := need(1); err != nil {
			return value.Value{}, err
		}
		return value.NewString(strings.ToLower(args[0].String())), nil
	case "UPPER":
		if err := need(1); err != nil {
			return value.Value{}, err
		}
		return value.NewString(strings.ToUpper(args[0].String())), nil
	case "LENGTH":
		if err := need(1); err != nil {
			return value.Value{}, err
		}
		return value.NewInt(int64(len(args[0].String()))), nil
	case "ABS":
		if err := need(1); err != nil {
			return value.Value{}, err
		}
		switch args[0].Kind() {
		case value.Int:
			v := args[0].Int()
			if v < 0 {
				v = -v
			}
			return value.NewInt(v), nil
		case value.Float:
			v := args[0].Float()
			if v < 0 {
				v = -v
			}
			return value.NewFloat(v), nil
		default:
			return value.Value{}, fmt.Errorf("relstore: ABS over non-numeric value")
		}
	case "COALESCE":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return value.NewNull(), nil
	default:
		return value.Value{}, fmt.Errorf("relstore: unknown function %q", f.Name)
	}
}

// likeMatch implements SQL LIKE with '%' (any run) and '_' (any single
// character), case-sensitive, via dynamic two-pointer matching.
func likeMatch(s, pattern string) bool {
	// Greedy backtracking match over bytes.
	var si, pi int
	star, match := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			si++
			pi++
		case pi < len(pattern) && pattern[pi] == '%':
			star = pi
			match = si
			pi++
		case star >= 0:
			pi = star + 1
			match++
			si = match
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}
