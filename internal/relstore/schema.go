// Package relstore implements TATOOINE's relational substrate: a
// column-typed table store with hash indexes, primary and foreign keys,
// a SQL-subset executor, and CSV import. It stands in for the curated
// relational databases (INSEE, Ministry of Interior) that the paper's
// mixed instances contain. Tables live in memory by default; a database
// opened with OpenDatabase keeps rows, indexes and schemas on a
// persistent store.Store.
package relstore

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"tatooine/internal/value"
)

// Column describes one table column.
type Column struct {
	Name string
	Type value.Kind
}

// ForeignKey links a column to a referenced table/column.
type ForeignKey struct {
	Column    string
	RefTable  string
	RefColumn string
}

// Schema describes a table.
type Schema struct {
	Name        string
	Columns     []Column
	PrimaryKey  []string
	ForeignKeys []ForeignKey
}

// ColumnIndex returns the position of the named column, or -1.
func (s *Schema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// tableBackend is the storage engine behind a Table: row storage plus
// hash-index and primary-key bookkeeping. All methods are called with
// the Table's lock held, so implementations need no internal locking.
// Row ids are dense append positions (0..rowCount-1).
type tableBackend interface {
	rowCount() int
	// insert stores the row (already type-checked) under the next row id
	// and maintains every existing index. pkKey is "" when the table has
	// no primary key; otherwise insert must reject duplicates.
	insert(row value.Row, pkKey string) error
	// scan iterates rows in id order; stops when fn returns false. The
	// row passed to fn must not be retained.
	scan(fn func(row value.Row) bool) error
	// scanProject is scan with column pruning: only columns need[i]
	// marks true are materialized, the rest arrive as Nulls at their
	// original positions (so positional references stay valid). need ==
	// nil means every column.
	scanProject(need []bool, fn func(row value.Row) bool) error
	// createIndex builds (or rebuilds) the hash index for the column at
	// position ci, canonically named col.
	createIndex(col string, ci int) error
	hasIndex(col string) bool
	// indexLookup returns the rows whose indexed column has value key k.
	indexLookup(col string, k string) ([]value.Row, error)
	// err returns the first storage error swallowed by an error-less
	// read path (scan callbacks that cannot propagate), or nil.
	err() error
}

// Table is a relation with optional hash indexes. All methods are safe
// for concurrent use.
type Table struct {
	mu     sync.RWMutex
	schema Schema
	be     tableBackend
	// persistIndexes, when non-nil, records the table's indexed-column
	// list in the owning database's catalog (set for store-backed tables).
	persistIndexes func(cols []string) error
}

// NewTable creates an empty in-memory table with the given schema.
func NewTable(schema Schema) *Table {
	return &Table{schema: schema, be: newMemTable()}
}

// Schema returns a copy of the table's schema.
func (t *Table) Schema() Schema { return t.schema }

// Name returns the table name.
func (t *Table) Name() string { return t.schema.Name }

// RowCount returns the number of stored rows.
func (t *Table) RowCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.be.rowCount()
}

// StoreErr returns the first storage error the table's backend has
// swallowed on an error-less read path, or nil. In-memory tables always
// return nil.
func (t *Table) StoreErr() error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.be.err()
}

// Insert appends a row after type-checking it against the schema. String
// values are coerced to the declared column types when possible. Primary
// key duplicates are rejected.
func (t *Table) Insert(row value.Row) error {
	if len(row) != len(t.schema.Columns) {
		return fmt.Errorf("relstore: table %s: row has %d values, schema has %d columns",
			t.schema.Name, len(row), len(t.schema.Columns))
	}
	typed := make(value.Row, len(row))
	for i, v := range row {
		if v.IsNull() {
			typed[i] = v
			continue
		}
		want := t.schema.Columns[i].Type
		if v.Kind() == want {
			typed[i] = v
			continue
		}
		coerced, ok := value.Coerce(v, want)
		if !ok {
			return fmt.Errorf("relstore: table %s column %s: cannot store %s as %s",
				t.schema.Name, t.schema.Columns[i].Name, v.Kind(), want)
		}
		typed[i] = coerced
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	var pkKey string
	if len(t.schema.PrimaryKey) > 0 {
		pkKey = t.pkKeyLocked(typed)
	}
	return t.be.insert(typed, pkKey)
}

func (t *Table) pkKeyLocked(row value.Row) string {
	parts := make(value.Row, 0, len(t.schema.PrimaryKey))
	for _, col := range t.schema.PrimaryKey {
		parts = append(parts, row[t.schema.ColumnIndex(col)])
	}
	return parts.Key()
}

// CreateIndex builds (or rebuilds) a hash index on the named column.
func (t *Table) CreateIndex(column string) error {
	ci := t.schema.ColumnIndex(column)
	if ci < 0 {
		return fmt.Errorf("relstore: table %s: no column %q", t.schema.Name, column)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.be.createIndex(t.schema.Columns[ci].Name, ci); err != nil {
		return err
	}
	if t.persistIndexes != nil {
		var cols []string
		for _, c := range t.schema.Columns {
			if t.be.hasIndex(c.Name) {
				cols = append(cols, c.Name)
			}
		}
		return t.persistIndexes(cols)
	}
	return nil
}

// HasIndex reports whether the column has a hash index.
func (t *Table) HasIndex(column string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ci := t.schema.ColumnIndex(column)
	if ci < 0 {
		return false
	}
	return t.be.hasIndex(t.schema.Columns[ci].Name)
}

// LookupIndex returns copies of the rows whose indexed column equals v.
// The boolean is false when the column has no index.
func (t *Table) LookupIndex(column string, v value.Value) ([]value.Row, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ci := t.schema.ColumnIndex(column)
	if ci < 0 {
		return nil, false
	}
	col := t.schema.Columns[ci].Name
	if !t.be.hasIndex(col) {
		return nil, false
	}
	rows, err := t.be.indexLookup(col, v.Key())
	if err != nil {
		// The signature predates storage errors; a failed disk lookup
		// reports "no index" so callers fall back to a table scan, whose
		// own error surfaces through StoreErr.
		return nil, false
	}
	return rows, true
}

// Scan calls fn with each row. The row slice must not be retained or
// mutated by fn; clone if needed. Iteration stops when fn returns false.
func (t *Table) Scan(fn func(row value.Row) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.be.scan(fn)
}

// Rows returns a deep copy of all rows.
func (t *Table) Rows() []value.Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]value.Row, 0, t.be.rowCount())
	t.be.scan(func(r value.Row) bool {
		out = append(out, r.Clone())
		return true
	})
	return out
}

// ScanProject is Scan with column pruning: only columns need[i] marks
// true are materialized; the rest arrive as Nulls at their original
// positions so positional references stay valid. A nil need scans every
// column. Store-backed tables skip decoding pruned values entirely.
func (t *Table) ScanProject(need []bool, fn func(row value.Row) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.be.scanProject(need, fn)
}

// RowsProject returns a deep copy of all rows with only the columns
// need[i] marks true materialized (Nulls elsewhere). A nil need is
// equivalent to Rows.
func (t *Table) RowsProject(need []bool) []value.Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]value.Row, 0, t.be.rowCount())
	t.be.scanProject(need, func(r value.Row) bool {
		out = append(out, r.Clone())
		return true
	})
	return out
}

// DistinctValues returns the sorted distinct non-null values of a column.
func (t *Table) DistinctValues(column string) ([]value.Value, error) {
	ci := t.schema.ColumnIndex(column)
	if ci < 0 {
		return nil, fmt.Errorf("relstore: table %s: no column %q", t.schema.Name, column)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	seen := make(map[string]value.Value)
	if err := t.be.scan(func(r value.Row) bool {
		if r[ci].IsNull() {
			return true
		}
		seen[r[ci].Key()] = r[ci]
		return true
	}); err != nil {
		return nil, err
	}
	out := make([]value.Value, 0, len(seen))
	for _, v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return value.Less(out[i], out[j]) })
	return out, nil
}

// Database is a named collection of tables.
type Database struct {
	mu     sync.RWMutex
	name   string
	tables map[string]*Table
	disk   *diskCatalog // nil for an in-memory database
}

// NewDatabase creates an empty in-memory database.
func NewDatabase(name string) *Database {
	return &Database{name: name, tables: make(map[string]*Table)}
}

// Name returns the database name.
func (db *Database) Name() string { return db.name }

// CreateTable registers a new table; the name must be unused.
func (db *Database) CreateTable(schema Schema) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(schema.Name)
	if _, exists := db.tables[key]; exists {
		return nil, fmt.Errorf("relstore: table %q already exists", schema.Name)
	}
	// Validate foreign keys against existing tables.
	for _, fk := range schema.ForeignKeys {
		ref, ok := db.tables[strings.ToLower(fk.RefTable)]
		if !ok {
			return nil, fmt.Errorf("relstore: foreign key references unknown table %q", fk.RefTable)
		}
		if ref.schema.ColumnIndex(fk.RefColumn) < 0 {
			return nil, fmt.Errorf("relstore: foreign key references unknown column %s.%s", fk.RefTable, fk.RefColumn)
		}
		if schema.ColumnIndex(fk.Column) < 0 {
			return nil, fmt.Errorf("relstore: foreign key on unknown column %q", fk.Column)
		}
	}
	var t *Table
	if db.disk != nil {
		var err error
		if t, err = db.disk.createTable(schema, nil); err != nil {
			return nil, err
		}
	} else {
		t = NewTable(schema)
	}
	db.tables[key] = t
	return t, nil
}

// Table returns the named table (case-insensitive), or nil.
func (db *Database) Table(name string) *Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tables[strings.ToLower(name)]
}

// Tables returns all tables sorted by name.
func (db *Database) Tables() []*Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]*Table, 0, len(db.tables))
	for _, t := range db.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}
