// Package relstore implements TATOOINE's relational substrate: an
// in-memory column-typed table store with hash indexes, primary and
// foreign keys, a SQL-subset executor, and CSV import. It stands in for
// the curated relational databases (INSEE, Ministry of Interior) that
// the paper's mixed instances contain.
package relstore

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"tatooine/internal/value"
)

// Column describes one table column.
type Column struct {
	Name string
	Type value.Kind
}

// ForeignKey links a column to a referenced table/column.
type ForeignKey struct {
	Column    string
	RefTable  string
	RefColumn string
}

// Schema describes a table.
type Schema struct {
	Name        string
	Columns     []Column
	PrimaryKey  []string
	ForeignKeys []ForeignKey
}

// ColumnIndex returns the position of the named column, or -1.
func (s *Schema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Table is an in-memory relation with optional hash indexes. All methods
// are safe for concurrent use.
type Table struct {
	mu      sync.RWMutex
	schema  Schema
	rows    []value.Row
	indexes map[string]map[string][]int // column -> value key -> row ids
	pkSet   map[string]struct{}         // composite PK uniqueness
}

// NewTable creates an empty table with the given schema.
func NewTable(schema Schema) *Table {
	return &Table{
		schema:  schema,
		indexes: make(map[string]map[string][]int),
		pkSet:   make(map[string]struct{}),
	}
}

// Schema returns a copy of the table's schema.
func (t *Table) Schema() Schema { return t.schema }

// Name returns the table name.
func (t *Table) Name() string { return t.schema.Name }

// RowCount returns the number of stored rows.
func (t *Table) RowCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Insert appends a row after type-checking it against the schema. String
// values are coerced to the declared column types when possible. Primary
// key duplicates are rejected.
func (t *Table) Insert(row value.Row) error {
	if len(row) != len(t.schema.Columns) {
		return fmt.Errorf("relstore: table %s: row has %d values, schema has %d columns",
			t.schema.Name, len(row), len(t.schema.Columns))
	}
	typed := make(value.Row, len(row))
	for i, v := range row {
		if v.IsNull() {
			typed[i] = v
			continue
		}
		want := t.schema.Columns[i].Type
		if v.Kind() == want {
			typed[i] = v
			continue
		}
		coerced, ok := value.Coerce(v, want)
		if !ok {
			return fmt.Errorf("relstore: table %s column %s: cannot store %s as %s",
				t.schema.Name, t.schema.Columns[i].Name, v.Kind(), want)
		}
		typed[i] = coerced
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.schema.PrimaryKey) > 0 {
		key := t.pkKeyLocked(typed)
		if _, dup := t.pkSet[key]; dup {
			return fmt.Errorf("relstore: table %s: duplicate primary key %v", t.schema.Name, key)
		}
		t.pkSet[key] = struct{}{}
	}
	id := len(t.rows)
	t.rows = append(t.rows, typed)
	for col, idx := range t.indexes {
		ci := t.schema.ColumnIndex(col)
		k := typed[ci].Key()
		idx[k] = append(idx[k], id)
	}
	return nil
}

func (t *Table) pkKeyLocked(row value.Row) string {
	parts := make(value.Row, 0, len(t.schema.PrimaryKey))
	for _, col := range t.schema.PrimaryKey {
		parts = append(parts, row[t.schema.ColumnIndex(col)])
	}
	return parts.Key()
}

// CreateIndex builds (or rebuilds) a hash index on the named column.
func (t *Table) CreateIndex(column string) error {
	ci := t.schema.ColumnIndex(column)
	if ci < 0 {
		return fmt.Errorf("relstore: table %s: no column %q", t.schema.Name, column)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	idx := make(map[string][]int)
	for id, row := range t.rows {
		k := row[ci].Key()
		idx[k] = append(idx[k], id)
	}
	t.indexes[t.schema.Columns[ci].Name] = idx
	return nil
}

// HasIndex reports whether the column has a hash index.
func (t *Table) HasIndex(column string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ci := t.schema.ColumnIndex(column)
	if ci < 0 {
		return false
	}
	_, ok := t.indexes[t.schema.Columns[ci].Name]
	return ok
}

// LookupIndex returns copies of the rows whose indexed column equals v.
// The boolean is false when the column has no index.
func (t *Table) LookupIndex(column string, v value.Value) ([]value.Row, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ci := t.schema.ColumnIndex(column)
	if ci < 0 {
		return nil, false
	}
	idx, ok := t.indexes[t.schema.Columns[ci].Name]
	if !ok {
		return nil, false
	}
	ids := idx[v.Key()]
	out := make([]value.Row, 0, len(ids))
	for _, id := range ids {
		out = append(out, t.rows[id].Clone())
	}
	return out, true
}

// Scan calls fn with each row. The row slice must not be retained or
// mutated by fn; clone if needed. Iteration stops when fn returns false.
func (t *Table) Scan(fn func(row value.Row) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, r := range t.rows {
		if !fn(r) {
			return
		}
	}
}

// Rows returns a deep copy of all rows.
func (t *Table) Rows() []value.Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]value.Row, len(t.rows))
	for i, r := range t.rows {
		out[i] = r.Clone()
	}
	return out
}

// DistinctValues returns the sorted distinct non-null values of a column.
func (t *Table) DistinctValues(column string) ([]value.Value, error) {
	ci := t.schema.ColumnIndex(column)
	if ci < 0 {
		return nil, fmt.Errorf("relstore: table %s: no column %q", t.schema.Name, column)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	seen := make(map[string]value.Value)
	for _, r := range t.rows {
		if r[ci].IsNull() {
			continue
		}
		seen[r[ci].Key()] = r[ci]
	}
	out := make([]value.Value, 0, len(seen))
	for _, v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return value.Less(out[i], out[j]) })
	return out, nil
}

// Database is a named collection of tables.
type Database struct {
	mu     sync.RWMutex
	name   string
	tables map[string]*Table
}

// NewDatabase creates an empty database.
func NewDatabase(name string) *Database {
	return &Database{name: name, tables: make(map[string]*Table)}
}

// Name returns the database name.
func (db *Database) Name() string { return db.name }

// CreateTable registers a new table; the name must be unused.
func (db *Database) CreateTable(schema Schema) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(schema.Name)
	if _, exists := db.tables[key]; exists {
		return nil, fmt.Errorf("relstore: table %q already exists", schema.Name)
	}
	// Validate foreign keys against existing tables.
	for _, fk := range schema.ForeignKeys {
		ref, ok := db.tables[strings.ToLower(fk.RefTable)]
		if !ok {
			return nil, fmt.Errorf("relstore: foreign key references unknown table %q", fk.RefTable)
		}
		if ref.schema.ColumnIndex(fk.RefColumn) < 0 {
			return nil, fmt.Errorf("relstore: foreign key references unknown column %s.%s", fk.RefTable, fk.RefColumn)
		}
		if schema.ColumnIndex(fk.Column) < 0 {
			return nil, fmt.Errorf("relstore: foreign key on unknown column %q", fk.Column)
		}
	}
	t := NewTable(schema)
	db.tables[key] = t
	return t, nil
}

// Table returns the named table (case-insensitive), or nil.
func (db *Database) Table(name string) *Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tables[strings.ToLower(name)]
}

// Tables returns all tables sorted by name.
func (db *Database) Tables() []*Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]*Table, 0, len(db.tables))
	for _, t := range db.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}
