package relstore

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"tatooine/internal/value"
)

// Binary row codec for the store backend. Layout:
//
//	u16 column count, then per value:
//	  u8 kind, then a kind-specific payload:
//	    Null   —
//	    String u32 length + bytes
//	    Int    u64 big-endian (two's complement)
//	    Float  u64 big-endian IEEE-754 bits
//	    Bool   u8
//	    Time   u32 length + RFC3339Nano bytes (values are stored UTC)
func encodeRow(r value.Row) []byte {
	buf := make([]byte, 2, 2+8*len(r))
	binary.BigEndian.PutUint16(buf, uint16(len(r)))
	var u64 [8]byte
	var u32 [4]byte
	for _, v := range r {
		buf = append(buf, byte(v.Kind()))
		switch v.Kind() {
		case value.Null:
		case value.String:
			s := v.Str()
			binary.BigEndian.PutUint32(u32[:], uint32(len(s)))
			buf = append(buf, u32[:]...)
			buf = append(buf, s...)
		case value.Int:
			binary.BigEndian.PutUint64(u64[:], uint64(v.Int()))
			buf = append(buf, u64[:]...)
		case value.Float:
			binary.BigEndian.PutUint64(u64[:], math.Float64bits(v.Float()))
			buf = append(buf, u64[:]...)
		case value.Bool:
			if v.Bool() {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		case value.Time:
			s := v.Time().UTC().Format(time.RFC3339Nano)
			binary.BigEndian.PutUint32(u32[:], uint32(len(s)))
			buf = append(buf, u32[:]...)
			buf = append(buf, s...)
		}
	}
	return buf
}

func decodeRow(b []byte) (value.Row, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("relstore: row codec: short buffer")
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	row := make(value.Row, 0, n)
	str := func() (string, error) {
		if len(b) < 4 {
			return "", fmt.Errorf("relstore: row codec: truncated length")
		}
		l := int(binary.BigEndian.Uint32(b))
		b = b[4:]
		if len(b) < l {
			return "", fmt.Errorf("relstore: row codec: truncated string")
		}
		s := string(b[:l])
		b = b[l:]
		return s, nil
	}
	for i := 0; i < n; i++ {
		if len(b) < 1 {
			return nil, fmt.Errorf("relstore: row codec: truncated kind")
		}
		k := value.Kind(b[0])
		b = b[1:]
		switch k {
		case value.Null:
			row = append(row, value.NewNull())
		case value.String:
			s, err := str()
			if err != nil {
				return nil, err
			}
			row = append(row, value.NewString(s))
		case value.Int:
			if len(b) < 8 {
				return nil, fmt.Errorf("relstore: row codec: truncated int")
			}
			row = append(row, value.NewInt(int64(binary.BigEndian.Uint64(b))))
			b = b[8:]
		case value.Float:
			if len(b) < 8 {
				return nil, fmt.Errorf("relstore: row codec: truncated float")
			}
			row = append(row, value.NewFloat(math.Float64frombits(binary.BigEndian.Uint64(b))))
			b = b[8:]
		case value.Bool:
			if len(b) < 1 {
				return nil, fmt.Errorf("relstore: row codec: truncated bool")
			}
			row = append(row, value.NewBool(b[0] != 0))
			b = b[1:]
		case value.Time:
			s, err := str()
			if err != nil {
				return nil, err
			}
			t, err := time.Parse(time.RFC3339Nano, s)
			if err != nil {
				return nil, fmt.Errorf("relstore: row codec: bad time %q: %v", s, err)
			}
			row = append(row, value.NewTime(t))
		default:
			return nil, fmt.Errorf("relstore: row codec: unknown kind %d", k)
		}
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("relstore: row codec: %d trailing bytes", len(b))
	}
	return row, nil
}
