package relstore

import (
	"tatooine/internal/value"
)

// The binary row codec lives in internal/value (value.EncodeRow /
// value.DecodeRow / value.DecodeRowProject) so the executor's spill
// files share one format with stored tables; these aliases keep the
// package-local call sites short.

func encodeRow(r value.Row) []byte { return value.EncodeRow(r) }

func decodeRow(b []byte) (value.Row, error) { return value.DecodeRow(b) }
