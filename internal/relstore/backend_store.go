package relstore

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"tatooine/internal/store"
	"tatooine/internal/value"
)

// storeTable is the B-tree-backed table backend. Rows live in a rows
// keyspace keyed by dense 8-byte big-endian row ids; each hash index is
// its own keyspace whose keys are a framed value key followed by the
// row id (so equal-value rows are one prefix scan); the primary-key set
// is a keyspace of PK value keys. Writes become durable at the owning
// store's next Commit.
type storeTable struct {
	st     store.Store
	prefix string
	rows   store.KV
	pk     store.KV
	ixs    map[string]store.KV // column -> index keyspace
	colIdx map[string]int
	count  int
	fe     error // first swallowed read error
}

func openStoreTable(st store.Store, prefix string, schema Schema, indexed []string) (*storeTable, error) {
	rows, err := st.Keyspace(prefix + "/rows")
	if err != nil {
		return nil, err
	}
	pk, err := st.Keyspace(prefix + "/pk")
	if err != nil {
		return nil, err
	}
	b := &storeTable{
		st:     st,
		prefix: prefix,
		rows:   rows,
		pk:     pk,
		ixs:    make(map[string]store.KV),
		colIdx: make(map[string]int),
		count:  rows.Len(),
	}
	for _, col := range indexed {
		ci := schema.ColumnIndex(col)
		if ci < 0 {
			return nil, fmt.Errorf("relstore: table %s: catalog indexes unknown column %q", schema.Name, col)
		}
		kv, err := st.Keyspace(prefix + "/ix/" + strings.ToLower(col))
		if err != nil {
			return nil, err
		}
		b.ixs[schema.Columns[ci].Name] = kv
		b.colIdx[schema.Columns[ci].Name] = ci
	}
	return b, nil
}

func (b *storeTable) fail(err error) {
	if err != nil && b.fe == nil {
		b.fe = err
	}
}

func (b *storeTable) err() error { return b.fe }

func (b *storeTable) rowCount() int { return b.count }

func rowIDKey(id int) []byte {
	var k [8]byte
	binary.BigEndian.PutUint64(k[:], uint64(id))
	return k[:]
}

// ixValPrefix encodes a value key for use as an index-scan prefix.
// Short keys are length-framed verbatim (tag 0); long ones are replaced
// by their SHA-256 (tag 1) so index keys stay within the store's inline
// key budget. Both forms are self-delimiting, so appending the row id
// keeps exact-match prefix scans sound.
func ixValPrefix(valKey string) []byte {
	if len(valKey) > 512 {
		sum := sha256.Sum256([]byte(valKey))
		out := make([]byte, 1+len(sum))
		out[0] = 1
		copy(out[1:], sum[:])
		return out
	}
	out := make([]byte, 3, 3+len(valKey))
	out[0] = 0
	binary.BigEndian.PutUint16(out[1:], uint16(len(valKey)))
	return append(out, valKey...)
}

func (b *storeTable) insert(row value.Row, pkKey string) error {
	if pkKey != "" {
		k := ixValPrefix(pkKey)
		if _, dup, err := b.pk.Get(k); err != nil {
			return err
		} else if dup {
			return fmt.Errorf("relstore: duplicate primary key %v", pkKey)
		}
		if _, err := b.pk.Put(k, nil); err != nil {
			return err
		}
	}
	id := b.count
	if _, err := b.rows.Put(rowIDKey(id), encodeRow(row)); err != nil {
		return err
	}
	for col, kv := range b.ixs {
		key := append(ixValPrefix(row[b.colIdx[col]].Key()), rowIDKey(id)...)
		if _, err := kv.Put(key, nil); err != nil {
			return err
		}
	}
	b.count++
	return nil
}

func (b *storeTable) scan(fn func(row value.Row) bool) error {
	return b.scanProject(nil, fn)
}

func (b *storeTable) scanProject(need []bool, fn func(row value.Row) bool) error {
	var decErr error
	err := b.rows.Scan(nil, func(_, v []byte) bool {
		row, err := value.DecodeRowProject(v, need)
		if err != nil {
			decErr = err
			return false
		}
		return fn(row)
	})
	if err == nil {
		err = decErr
	}
	b.fail(err)
	return err
}

func (b *storeTable) createIndex(col string, ci int) error {
	kv, err := b.st.Keyspace(b.prefix + "/ix/" + strings.ToLower(col))
	if err != nil {
		return err
	}
	// Rebuild from scratch: drop stale entries, then walk the rows.
	var stale [][]byte
	if err := kv.Scan(nil, func(k, _ []byte) bool {
		stale = append(stale, append([]byte(nil), k...))
		return true
	}); err != nil {
		return err
	}
	for _, k := range stale {
		if _, err := kv.Delete(k); err != nil {
			return err
		}
	}
	id := 0
	var insErr error
	if err := b.rows.Scan(nil, func(_, v []byte) bool {
		row, err := decodeRow(v)
		if err != nil {
			insErr = err
			return false
		}
		key := append(ixValPrefix(row[ci].Key()), rowIDKey(id)...)
		if _, err := kv.Put(key, nil); err != nil {
			insErr = err
			return false
		}
		id++
		return true
	}); err != nil {
		return err
	}
	if insErr != nil {
		return insErr
	}
	b.ixs[col] = kv
	b.colIdx[col] = ci
	return nil
}

func (b *storeTable) hasIndex(col string) bool {
	_, ok := b.ixs[col]
	return ok
}

func (b *storeTable) indexLookup(col string, k string) ([]value.Row, error) {
	kv := b.ixs[col]
	var ids []int
	if err := kv.Scan(ixValPrefix(k), func(key, _ []byte) bool {
		ids = append(ids, int(binary.BigEndian.Uint64(key[len(key)-8:])))
		return true
	}); err != nil {
		b.fail(err)
		return nil, err
	}
	sort.Ints(ids)
	out := make([]value.Row, 0, len(ids))
	for _, id := range ids {
		v, ok, err := b.rows.Get(rowIDKey(id))
		if err != nil {
			b.fail(err)
			return nil, err
		}
		if !ok {
			err := fmt.Errorf("relstore: index %s points at missing row %d", col, id)
			b.fail(err)
			return nil, err
		}
		row, err := decodeRow(v)
		if err != nil {
			b.fail(err)
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// diskCatalog persists table schemas and indexed-column lists for a
// store-backed database in a meta keyspace, so OpenDatabase can rebuild
// the table set on a warm start.
type diskCatalog struct {
	st     store.Store
	dbName string
	meta   store.KV
}

type tableMeta struct {
	Schema  Schema   `json:"schema"`
	Indexes []string `json:"indexes,omitempty"`
}

func (c *diskCatalog) tablePrefix(name string) string {
	return "rel/" + c.dbName + "/t/" + strings.ToLower(name)
}

func (c *diskCatalog) writeMeta(tm tableMeta) error {
	buf, err := json.Marshal(tm)
	if err != nil {
		return err
	}
	_, err = c.meta.Put([]byte("schema/"+strings.ToLower(tm.Schema.Name)), buf)
	return err
}

// createTable materializes a store-backed Table and records its schema
// (with indexed columns) in the catalog.
func (c *diskCatalog) createTable(schema Schema, indexed []string) (*Table, error) {
	be, err := openStoreTable(c.st, c.tablePrefix(schema.Name), schema, indexed)
	if err != nil {
		return nil, err
	}
	t := &Table{schema: schema, be: be}
	t.persistIndexes = func(cols []string) error {
		return c.writeMeta(tableMeta{Schema: schema, Indexes: cols})
	}
	if err := c.writeMeta(tableMeta{Schema: schema, Indexes: indexed}); err != nil {
		return nil, err
	}
	return t, nil
}

// OpenDatabase opens (or creates) a database persisted in st. Table
// schemas, rows and indexes are loaded from the store; changes become
// durable at the store's next Commit.
func OpenDatabase(st store.Store, name string) (*Database, error) {
	meta, err := st.Keyspace("rel/" + name + "/meta")
	if err != nil {
		return nil, err
	}
	cat := &diskCatalog{st: st, dbName: name, meta: meta}
	db := &Database{name: name, tables: make(map[string]*Table), disk: cat}
	// Collect metas first: createTable writes back to the meta keyspace,
	// which must not happen inside its own scan.
	var metas []tableMeta
	var loadErr error
	err = meta.Scan([]byte("schema/"), func(_, v []byte) bool {
		var tm tableMeta
		if err := json.Unmarshal(v, &tm); err != nil {
			loadErr = fmt.Errorf("relstore: open %s: corrupt table meta: %v", name, err)
			return false
		}
		metas = append(metas, tm)
		return true
	})
	if err != nil {
		return nil, err
	}
	if loadErr != nil {
		return nil, loadErr
	}
	for _, tm := range metas {
		t, err := cat.createTable(tm.Schema, tm.Indexes)
		if err != nil {
			return nil, err
		}
		db.tables[strings.ToLower(tm.Schema.Name)] = t
	}
	return db, nil
}
