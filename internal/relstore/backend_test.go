package relstore

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"tatooine/internal/store"
	"tatooine/internal/value"
)

// runBothDBs runs fn against an in-memory database and a store-backed
// one, so table behavior is pinned backend-agnostically.
func runBothDBs(t *testing.T, fn func(t *testing.T, db *Database)) {
	t.Helper()
	t.Run("mem", func(t *testing.T) {
		fn(t, NewDatabase("test"))
	})
	t.Run("store", func(t *testing.T) {
		st, err := store.Open(filepath.Join(t.TempDir(), "rel.db"), store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		db, err := OpenDatabase(st, "test")
		if err != nil {
			t.Fatal(err)
		}
		fn(t, db)
		for _, tb := range db.Tables() {
			if err := tb.StoreErr(); err != nil {
				t.Fatalf("table %s store error: %v", tb.Name(), err)
			}
		}
	})
}

func citySchema() Schema {
	return Schema{
		Name: "city",
		Columns: []Column{
			{Name: "id", Type: value.Int},
			{Name: "name", Type: value.String},
			{Name: "pop", Type: value.Int},
		},
		PrimaryKey: []string{"id"},
	}
}

func TestBackendsInsertScanRowCount(t *testing.T) {
	runBothDBs(t, func(t *testing.T, db *Database) {
		tb, err := db.CreateTable(citySchema())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			err := tb.Insert(value.Row{
				value.NewInt(int64(i)),
				value.NewString(fmt.Sprintf("city%d", i)),
				value.NewInt(int64(1000 * i)),
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		if tb.RowCount() != 50 {
			t.Fatalf("rowcount = %d", tb.RowCount())
		}
		// Scan preserves insertion order.
		i := 0
		tb.Scan(func(r value.Row) bool {
			if r[0].Int() != int64(i) {
				t.Fatalf("scan row %d has id %d", i, r[0].Int())
			}
			i++
			return true
		})
		if i != 50 {
			t.Fatalf("scan visited %d rows", i)
		}
		// Duplicate PK rejected.
		err = tb.Insert(value.Row{value.NewInt(3), value.NewString("dup"), value.NewInt(0)})
		if err == nil {
			t.Fatal("duplicate primary key accepted")
		}
	})
}

func TestBackendsIndexLookup(t *testing.T) {
	runBothDBs(t, func(t *testing.T, db *Database) {
		tb, err := db.CreateTable(citySchema())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 30; i++ {
			tb.Insert(value.Row{
				value.NewInt(int64(i)),
				value.NewString(fmt.Sprintf("name%d", i%3)),
				value.NewInt(int64(i)),
			})
		}
		if _, ok := tb.LookupIndex("name", value.NewString("name1")); ok {
			t.Fatal("lookup succeeded without index")
		}
		if err := tb.CreateIndex("name"); err != nil {
			t.Fatal(err)
		}
		if !tb.HasIndex("NAME") {
			t.Fatal("HasIndex is case-sensitive")
		}
		rows, ok := tb.LookupIndex("name", value.NewString("name1"))
		if !ok || len(rows) != 10 {
			t.Fatalf("lookup = %d rows, ok=%v", len(rows), ok)
		}
		for _, r := range rows {
			if r[1].Str() != "name1" {
				t.Fatalf("lookup returned row %v", r)
			}
		}
		// Index maintained by inserts AFTER creation.
		tb.Insert(value.Row{value.NewInt(100), value.NewString("name1"), value.NewInt(1)})
		rows, _ = tb.LookupIndex("name", value.NewString("name1"))
		if len(rows) != 11 {
			t.Fatalf("post-insert lookup = %d rows, want 11", len(rows))
		}
		rows, ok = tb.LookupIndex("name", value.NewString("absent"))
		if !ok || len(rows) != 0 {
			t.Fatalf("absent value lookup = %d rows, ok=%v", len(rows), ok)
		}
	})
}

func TestBackendsAllValueKinds(t *testing.T) {
	runBothDBs(t, func(t *testing.T, db *Database) {
		tb, err := db.CreateTable(Schema{
			Name: "kinds",
			Columns: []Column{
				{Name: "s", Type: value.String},
				{Name: "i", Type: value.Int},
				{Name: "f", Type: value.Float},
				{Name: "b", Type: value.Bool},
				{Name: "t", Type: value.Time},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := time.Date(2016, 5, 4, 12, 30, 0, 123456789, time.UTC)
		want := value.Row{
			value.NewString("héllo \x00 world"),
			value.NewInt(-42),
			value.NewFloat(3.25),
			value.NewBool(true),
			value.NewTime(ts),
		}
		if err := tb.Insert(want.Clone()); err != nil {
			t.Fatal(err)
		}
		if err := tb.Insert(value.Row{value.NewNull(), value.NewNull(), value.NewNull(), value.NewNull(), value.NewNull()}); err != nil {
			t.Fatal(err)
		}
		rows := tb.Rows()
		if len(rows) != 2 {
			t.Fatalf("rows = %d", len(rows))
		}
		for i, v := range want {
			got := rows[0][i]
			if got.Kind() != v.Kind() || got.Key() != v.Key() {
				t.Fatalf("col %d: got %v (%v), want %v (%v)", i, got, got.Kind(), v, v.Kind())
			}
		}
		if !rows[0][4].Time().Equal(ts) {
			t.Fatalf("time roundtrip: got %v, want %v", rows[0][4].Time(), ts)
		}
		for i, v := range rows[1] {
			if !v.IsNull() {
				t.Fatalf("null col %d roundtripped as %v", i, v)
			}
		}
	})
}

func TestStoreDatabasePersistAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rel.db")
	st, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	db, err := OpenDatabase(st, "insee")
	if err != nil {
		t.Fatal(err)
	}
	tb, err := db.CreateTable(citySchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		tb.Insert(value.Row{
			value.NewInt(int64(i)),
			value.NewString(fmt.Sprintf("c%d", i%10)),
			value.NewInt(int64(i * 7)),
		})
	}
	if err := tb.CreateIndex("name"); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	db2, err := OpenDatabase(st2, "insee")
	if err != nil {
		t.Fatal(err)
	}
	tb2 := db2.Table("CITY")
	if tb2 == nil {
		t.Fatal("table lost on reopen")
	}
	if tb2.RowCount() != 200 {
		t.Fatalf("reopened rowcount = %d", tb2.RowCount())
	}
	sc := tb2.Schema()
	if len(sc.Columns) != 3 || sc.Columns[1].Name != "name" || len(sc.PrimaryKey) != 1 {
		t.Fatalf("reopened schema = %+v", sc)
	}
	// Index survives reopen (from the catalog's indexed-column list).
	if !tb2.HasIndex("name") {
		t.Fatal("index lost on reopen")
	}
	rows, ok := tb2.LookupIndex("name", value.NewString("c3"))
	if !ok || len(rows) != 20 {
		t.Fatalf("reopened lookup = %d rows, ok=%v", len(rows), ok)
	}
	// PK set survives: an old id must still be rejected.
	if err := tb2.Insert(value.Row{value.NewInt(5), value.NewString("x"), value.NewInt(0)}); err == nil {
		t.Fatal("reopened table accepted duplicate primary key")
	}
	// New inserts continue row ids without clobbering.
	if err := tb2.Insert(value.Row{value.NewInt(1000), value.NewString("new"), value.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	if tb2.RowCount() != 201 {
		t.Fatalf("rowcount after insert = %d", tb2.RowCount())
	}
}

func TestBackendsCSVImport(t *testing.T) {
	data := "id,name,pop,founded\n1,paris,2200000,1800-01-01T00:00:00Z\n2,lyon,510000,\n3,nice,340000,1860-01-01T00:00:00Z\n"
	runBothDBs(t, func(t *testing.T, db *Database) {
		tb, err := db.ImportCSVString("cities", data)
		if err != nil {
			t.Fatal(err)
		}
		if tb.RowCount() != 3 {
			t.Fatalf("rowcount = %d", tb.RowCount())
		}
		sc := tb.Schema()
		if sc.Columns[0].Type != value.Int || sc.Columns[1].Type != value.String ||
			sc.Columns[2].Type != value.Int || sc.Columns[3].Type != value.Time {
			t.Fatalf("inferred schema = %+v", sc.Columns)
		}
		rows := tb.Rows()
		if rows[1][3].Kind() != value.Null {
			t.Fatalf("empty cell = %v, want null", rows[1][3])
		}
	})
}

// TestCSVStreamsBeyondSample pins that rows past the inference sample
// stream correctly (the old implementation buffered everything; this
// guards the streaming rewrite's seam at row 100/101).
func TestCSVStreamsBeyondSample(t *testing.T) {
	var b []byte
	b = append(b, "n\n"...)
	for i := 0; i < inferSample+50; i++ {
		b = append(b, fmt.Sprintf("%d\n", i)...)
	}
	runBothDBs(t, func(t *testing.T, db *Database) {
		tb, err := db.ImportCSVString("nums", string(b))
		if err != nil {
			t.Fatal(err)
		}
		if tb.RowCount() != inferSample+50 {
			t.Fatalf("rowcount = %d, want %d", tb.RowCount(), inferSample+50)
		}
		i := 0
		tb.Scan(func(r value.Row) bool {
			if r[0].Int() != int64(i) {
				t.Fatalf("row %d = %v", i, r[0])
			}
			i++
			return true
		})
	})
}

func TestRowCodecRejectsCorrupt(t *testing.T) {
	good := encodeRow(value.Row{value.NewString("abc"), value.NewInt(7)})
	if _, err := decodeRow(good); err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]byte{
		{},
		good[:len(good)-1],
		append(append([]byte(nil), good...), 0xFF),
	} {
		if _, err := decodeRow(bad); err == nil {
			t.Fatalf("decodeRow accepted corrupt input %v", bad)
		}
	}
}

// TestBackendsScanProject pins the column-pruned scan contract on both
// backends: pruned columns arrive as Nulls at their original positions,
// needed ones carry their stored values, and a nil mask is a full scan.
func TestBackendsScanProject(t *testing.T) {
	runBothDBs(t, func(t *testing.T, db *Database) {
		tb, err := db.CreateTable(citySchema())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			err := tb.Insert(value.Row{
				value.NewInt(int64(i)),
				value.NewString(fmt.Sprintf("city%d", i)),
				value.NewInt(int64(i * 1000)),
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		rows := tb.RowsProject([]bool{true, false, true})
		if len(rows) != 20 {
			t.Fatalf("projected rows = %d, want 20", len(rows))
		}
		for i, r := range rows {
			if len(r) != 3 {
				t.Fatalf("row %d has %d values, want 3", i, len(r))
			}
			if r[0].Int() != int64(i) || r[2].Int() != int64(i*1000) {
				t.Fatalf("row %d needed columns wrong: %v", i, r)
			}
			if !r[1].IsNull() {
				t.Fatalf("row %d pruned column not Null: %v", i, r[1])
			}
		}
		if full := tb.RowsProject(nil); len(full) != 20 || full[7][1].Str() != "city7" {
			t.Fatalf("nil mask should scan all columns: %v", full[7])
		}
		// Pruned scans feed the executor: a query touching only id/pop
		// must not depend on the pruned name column.
		res, err := db.Exec("SELECT id, pop FROM city WHERE pop >= 18000 ORDER BY id")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 2 || res.Rows[0][0].Int() != 18 || res.Rows[1][1].Int() != 19000 {
			t.Fatalf("pruned query wrong: %v", res.Rows)
		}
		// And a query that does need every column still sees them all.
		res, err = db.Exec("SELECT * FROM city WHERE id = 7")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 || res.Rows[0][1].Str() != "city7" {
			t.Fatalf("star query wrong: %v", res.Rows)
		}
	})
}
