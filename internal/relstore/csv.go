package relstore

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"tatooine/internal/value"
)

// ImportCSV loads CSV data (first record is the header) into a new table.
// Column types are inferred from the first non-empty value of each
// column across up to the first 100 data rows; untyped columns default
// to TEXT. Empty cells become NULL.
func (db *Database) ImportCSV(tableName string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relstore: csv header: %w", err)
	}
	if len(header) == 0 {
		return nil, fmt.Errorf("relstore: csv has no columns")
	}
	var records [][]string
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relstore: csv row %d: %w", len(records)+2, err)
		}
		records = append(records, rec)
	}

	// Infer types.
	kinds := make([]value.Kind, len(header))
	for i := range kinds {
		kinds[i] = value.Null
	}
	sample := len(records)
	if sample > 100 {
		sample = 100
	}
	for _, rec := range records[:sample] {
		for i := range header {
			if i >= len(rec) || rec[i] == "" {
				continue
			}
			k := value.Parse(rec[i], false).Kind()
			switch {
			case kinds[i] == value.Null:
				kinds[i] = k
			case kinds[i] == k:
			case kinds[i] == value.Int && k == value.Float,
				kinds[i] == value.Float && k == value.Int:
				kinds[i] = value.Float
			default:
				kinds[i] = value.String
			}
		}
	}
	schema := Schema{Name: tableName}
	for i, h := range header {
		k := kinds[i]
		if k == value.Null {
			k = value.String
		}
		schema.Columns = append(schema.Columns, Column{Name: strings.TrimSpace(h), Type: k})
	}
	t, err := db.CreateTable(schema)
	if err != nil {
		return nil, err
	}
	for ri, rec := range records {
		row := make(value.Row, len(header))
		for i := range header {
			if i >= len(rec) || rec[i] == "" {
				row[i] = value.NewNull()
				continue
			}
			row[i] = value.Parse(rec[i], true)
		}
		if err := t.Insert(row); err != nil {
			return nil, fmt.Errorf("relstore: csv row %d: %w", ri+2, err)
		}
	}
	return t, nil
}

// ImportCSVString is ImportCSV over a string.
func (db *Database) ImportCSVString(tableName, data string) (*Table, error) {
	return db.ImportCSV(tableName, strings.NewReader(data))
}
