package relstore

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"tatooine/internal/value"
)

// inferSample is how many leading data rows ImportCSV buffers to infer
// column types before switching to streaming inserts.
const inferSample = 100

// ImportCSV loads CSV data (first record is the header) into a new
// table. Column types are inferred from the first non-empty value of
// each column across up to the first 100 data rows; untyped columns
// default to TEXT. Empty cells become NULL.
//
// Only the inference sample is buffered: once types are fixed, rows
// stream from the reader straight into the table, so import memory is
// bounded by the sample regardless of file size.
func (db *Database) ImportCSV(tableName string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(bufio.NewReaderSize(r, 64<<10))
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relstore: csv header: %w", err)
	}
	if len(header) == 0 {
		return nil, fmt.Errorf("relstore: csv has no columns")
	}
	cr.ReuseRecord = true

	// Buffer the inference sample.
	var sample [][]string
	for len(sample) < inferSample {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relstore: csv row %d: %w", len(sample)+2, err)
		}
		sample = append(sample, append([]string(nil), rec...))
	}

	// Infer types from the sample.
	kinds := make([]value.Kind, len(header))
	for i := range kinds {
		kinds[i] = value.Null
	}
	for _, rec := range sample {
		for i := range header {
			if i >= len(rec) || rec[i] == "" {
				continue
			}
			k := value.Parse(rec[i], false).Kind()
			switch {
			case kinds[i] == value.Null:
				kinds[i] = k
			case kinds[i] == k:
			case kinds[i] == value.Int && k == value.Float,
				kinds[i] == value.Float && k == value.Int:
				kinds[i] = value.Float
			default:
				kinds[i] = value.String
			}
		}
	}
	schema := Schema{Name: tableName}
	for i, h := range header {
		k := kinds[i]
		if k == value.Null {
			k = value.String
		}
		schema.Columns = append(schema.Columns, Column{Name: strings.TrimSpace(h), Type: k})
	}
	t, err := db.CreateTable(schema)
	if err != nil {
		return nil, err
	}

	insert := func(rec []string, line int) error {
		row := make(value.Row, len(header))
		for i := range header {
			if i >= len(rec) || rec[i] == "" {
				row[i] = value.NewNull()
				continue
			}
			row[i] = value.Parse(rec[i], true)
		}
		if err := t.Insert(row); err != nil {
			return fmt.Errorf("relstore: csv row %d: %w", line, err)
		}
		return nil
	}
	for ri, rec := range sample {
		if err := insert(rec, ri+2); err != nil {
			return nil, err
		}
	}
	// Stream the remainder without accumulating records.
	for line := len(sample) + 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relstore: csv row %d: %w", line, err)
		}
		if err := insert(rec, line); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// ImportCSVString is ImportCSV over a string.
func (db *Database) ImportCSVString(tableName, data string) (*Table, error) {
	return db.ImportCSV(tableName, strings.NewReader(data))
}
