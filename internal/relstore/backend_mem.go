package relstore

import (
	"fmt"

	"tatooine/internal/value"
)

// memTable is the default in-memory table backend: an append-only row
// slice, hash indexes mapping value keys to row ids, and a primary-key
// set.
type memTable struct {
	rows    []value.Row
	indexes map[string]map[string][]int // column -> value key -> row ids
	colIdx  map[string]int              // column -> position in schema
	pkSet   map[string]struct{}
}

func newMemTable() *memTable {
	return &memTable{
		indexes: make(map[string]map[string][]int),
		colIdx:  make(map[string]int),
		pkSet:   make(map[string]struct{}),
	}
}

func (b *memTable) rowCount() int { return len(b.rows) }

func (b *memTable) insert(row value.Row, pkKey string) error {
	if pkKey != "" {
		if _, dup := b.pkSet[pkKey]; dup {
			return fmt.Errorf("relstore: duplicate primary key %v", pkKey)
		}
		b.pkSet[pkKey] = struct{}{}
	}
	id := len(b.rows)
	b.rows = append(b.rows, row)
	for col, idx := range b.indexes {
		k := row[b.colIdx[col]].Key()
		idx[k] = append(idx[k], id)
	}
	return nil
}

func (b *memTable) scan(fn func(row value.Row) bool) error {
	for _, r := range b.rows {
		if !fn(r) {
			return nil
		}
	}
	return nil
}

func (b *memTable) scanProject(need []bool, fn func(row value.Row) bool) error {
	if need == nil {
		return b.scan(fn)
	}
	// Rows are already resident; masking buys nothing on the storage
	// side, but callers (and tests) rely on pruned columns being Null.
	masked := make(value.Row, 0, 16)
	for _, r := range b.rows {
		masked = masked[:0]
		for i, v := range r {
			if i < len(need) && need[i] {
				masked = append(masked, v)
			} else {
				masked = append(masked, value.NewNull())
			}
		}
		if !fn(masked) {
			return nil
		}
	}
	return nil
}

func (b *memTable) createIndex(col string, ci int) error {
	idx := make(map[string][]int)
	for id, row := range b.rows {
		k := row[ci].Key()
		idx[k] = append(idx[k], id)
	}
	b.indexes[col] = idx
	b.colIdx[col] = ci
	return nil
}

func (b *memTable) hasIndex(col string) bool {
	_, ok := b.indexes[col]
	return ok
}

func (b *memTable) indexLookup(col string, k string) ([]value.Row, error) {
	ids := b.indexes[col][k]
	out := make([]value.Row, 0, len(ids))
	for _, id := range ids {
		out = append(out, b.rows[id].Clone())
	}
	return out, nil
}

func (b *memTable) err() error { return nil }
