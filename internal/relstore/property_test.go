package relstore

import (
	"fmt"
	"math/rand"
	"regexp"
	"strings"
	"testing"
	"testing/quick"

	"tatooine/internal/value"
)

// likeToRegexp compiles a SQL LIKE pattern to an anchored regexp; the
// reference implementation for the property test.
func likeToRegexp(pattern string) *regexp.Regexp {
	var b strings.Builder
	b.WriteString(`^(?s)`)
	for _, r := range pattern {
		switch r {
		case '%':
			b.WriteString(`.*`)
		case '_':
			b.WriteString(`.`)
		default:
			b.WriteString(regexp.QuoteMeta(string(r)))
		}
	}
	b.WriteString(`$`)
	return regexp.MustCompile(b.String())
}

// Property: likeMatch agrees with the regexp semantics of LIKE on
// random ASCII inputs and patterns.
func TestLikeMatchAgainstRegexpProperty(t *testing.T) {
	alphabet := "ab%_c"
	gen := func(rng *rand.Rand, n int) string {
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		return b.String()
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := strings.ReplaceAll(strings.ReplaceAll(gen(rng, rng.Intn(8)), "%", "x"), "_", "y")
		p := gen(rng, rng.Intn(6))
		want := likeToRegexp(p).MatchString(s)
		got := likeMatch(s, p)
		if got != want {
			t.Logf("s=%q p=%q got=%v want=%v", s, p, got, want)
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: SELECT with ORDER BY returns rows sorted by that column,
// for random data.
func TestOrderByProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		db := NewDatabase("p")
		if _, err := db.Exec("CREATE TABLE t (k INT, s TEXT)"); err != nil {
			return false
		}
		rows := int(n%50) + 1
		for i := 0; i < rows; i++ {
			if _, err := db.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d, 'r%d')", rng.Intn(100), i)); err != nil {
				return false
			}
		}
		res, err := db.Exec("SELECT k FROM t ORDER BY k")
		if err != nil || len(res.Rows) != rows {
			return false
		}
		for i := 1; i < len(res.Rows); i++ {
			if res.Rows[i-1][0].Int() > res.Rows[i][0].Int() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: GROUP BY SUM equals the sum computed directly, and the
// number of groups equals the distinct key count.
func TestGroupBySumProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		db := NewDatabase("p")
		if _, err := db.Exec("CREATE TABLE t (g TEXT, v INT)"); err != nil {
			return false
		}
		rows := int(n%60) + 1
		sums := map[string]int64{}
		for i := 0; i < rows; i++ {
			g := string(rune('a' + rng.Intn(4)))
			v := int64(rng.Intn(1000))
			sums[g] += v
			if _, err := db.Exec(fmt.Sprintf("INSERT INTO t VALUES ('%s', %d)", g, v)); err != nil {
				return false
			}
		}
		res, err := db.Exec("SELECT g, SUM(v) FROM t GROUP BY g")
		if err != nil || len(res.Rows) != len(sums) {
			return false
		}
		for _, row := range res.Rows {
			if sums[row[0].Str()] != row[1].Int() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: hash-join and nested-loop join (forced via a non-equi
// wrapper predicate that is always true) agree.
func TestJoinStrategiesAgreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := NewDatabase("p")
		db.Exec("CREATE TABLE a (k INT, x TEXT)")
		db.Exec("CREATE TABLE b (k INT, y TEXT)")
		for i := 0; i < 20; i++ {
			db.Exec(fmt.Sprintf("INSERT INTO a VALUES (%d, 'a%d')", rng.Intn(6), i))
			db.Exec(fmt.Sprintf("INSERT INTO b VALUES (%d, 'b%d')", rng.Intn(6), i))
		}
		hash, err := db.Exec("SELECT a.x, b.y FROM a JOIN b ON a.k = b.k ORDER BY x, y")
		if err != nil {
			return false
		}
		// The +0 arithmetic defeats equi-join detection → nested loop.
		loop, err := db.Exec("SELECT a.x, b.y FROM a JOIN b ON a.k = b.k + 0 ORDER BY x, y")
		if err != nil {
			return false
		}
		if len(hash.Rows) != len(loop.Rows) {
			return false
		}
		for i := range hash.Rows {
			for j := range hash.Rows[i] {
				if !value.Equal(hash.Rows[i][j], loop.Rows[i][j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
