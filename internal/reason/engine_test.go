package reason

import (
	"fmt"
	"testing"

	"tatooine/internal/rdf"
)

func iri(s string) rdf.Term { return rdf.NewIRI("http://e/" + s) }

func typ() rdf.Term { return rdf.NewIRI(rdf.RDFType) }

func parse(t *testing.T, text string) []rdf.Triple {
	t.Helper()
	ts, err := rdf.ParseString("@prefix : <http://e/> .\n" + text)
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

// requireEquivalent asserts the engine's maintained G∞ is
// triple-identical to a from-scratch saturation of the base graph.
func requireEquivalent(t *testing.T, e *Engine, base *rdf.Graph, context string) {
	t.Helper()
	want := rdf.Saturate(base).Graph
	got := e.Graph()
	wantTs, gotTs := want.Triples(), got.Triples()
	if len(wantTs) != len(gotTs) {
		t.Fatalf("%s: maintained G∞ has %d triples, from-scratch %d\nmaintained: %v\nscratch: %v",
			context, len(gotTs), len(wantTs), gotTs, wantTs)
	}
	for i := range wantTs {
		if wantTs[i] != gotTs[i] {
			t.Fatalf("%s: triple %d differs: maintained %v, scratch %v", context, i, gotTs[i], wantTs[i])
		}
	}
}

func TestInsertDataTriple(t *testing.T) {
	base := rdf.NewGraph()
	base.AddAll(parse(t, `
:Journalist rdfs:subClassOf :Employee .
:worksFor rdfs:subPropertyOf :paidBy .
:worksFor rdfs:range :Organization .
`))
	e := New(base, Config{})

	delta := parse(t, ":Samuel :worksFor :LeMonde .\n:Samuel a :Journalist .")
	base.AddBatch(delta)
	e.ApplyInsert(delta)

	for _, want := range []rdf.Triple{
		{S: iri("Samuel"), P: iri("paidBy"), O: iri("LeMonde")},
		{S: iri("Samuel"), P: typ(), O: iri("Employee")},
		{S: iri("LeMonde"), P: typ(), O: iri("Organization")},
	} {
		if !e.Graph().Contains(want) {
			t.Errorf("maintained G∞ missing %v", want)
		}
	}
	requireEquivalent(t, e, base, "after data insert")
	st := e.Stats()
	if st.Mode != "delta" || st.DeltaApplies != 1 || st.FullRecomputes != 1 {
		t.Errorf("stats = %+v, want delta mode, 1 delta apply, 1 full recompute (initial build)", st)
	}
	if st.Derived != e.Graph().Size()-base.Size() {
		t.Errorf("Derived = %d, want %d", st.Derived, e.Graph().Size()-base.Size())
	}
}

// TestInsertSchemaTriple: a new subClassOf edge must re-type existing
// instances and close transitively through the existing hierarchy —
// the targeted re-closure path.
func TestInsertSchemaTriple(t *testing.T) {
	base := rdf.NewGraph()
	base.AddAll(parse(t, `
:B rdfs:subClassOf :C .
:x a :A .
:y a :B .
`))
	e := New(base, Config{})

	// Splice A under B: x must become a B and (transitively) a C, and
	// A ⊑ C must materialize.
	delta := parse(t, ":A rdfs:subClassOf :B .")
	base.AddBatch(delta)
	e.ApplyInsert(delta)

	for _, want := range []rdf.Triple{
		{S: iri("x"), P: typ(), O: iri("B")},
		{S: iri("x"), P: typ(), O: iri("C")},
		{S: iri("A"), P: rdf.NewIRI(rdf.RDFSSubClassOf), O: iri("C")},
	} {
		if !e.Graph().Contains(want) {
			t.Errorf("maintained G∞ missing %v", want)
		}
	}
	requireEquivalent(t, e, base, "after schema insert")
	if st := e.Stats(); st.FullRecomputes != 1 {
		t.Errorf("schema insert triggered a full recompute: %+v", st)
	}
}

// TestDeleteRetractsCone: deleting the only support of a derivation
// retracts it, while conclusions with independent support survive.
func TestDeleteRetractsCone(t *testing.T) {
	base := rdf.NewGraph()
	base.AddAll(parse(t, `
:Journalist rdfs:subClassOf :Employee .
:Photographer rdfs:subClassOf :Employee .
:Samuel a :Journalist .
:Samuel a :Photographer .
`))
	e := New(base, Config{})

	// Remove one of the two classes: Employee membership must survive
	// via the other (re-derivation), Journalist membership must go.
	delta := parse(t, ":Samuel a :Journalist .")
	base.RemoveBatch(delta)
	e.ApplyDelete(delta)

	if e.Graph().Contains(rdf.Triple{S: iri("Samuel"), P: typ(), O: iri("Journalist")}) {
		t.Error("deleted triple still in maintained G∞")
	}
	if !e.Graph().Contains(rdf.Triple{S: iri("Samuel"), P: typ(), O: iri("Employee")}) {
		t.Error("independently supported conclusion was over-deleted and not re-derived")
	}
	requireEquivalent(t, e, base, "after delete")
	st := e.Stats()
	if st.DeltaApplies != 1 || st.FullRecomputes != 1 {
		t.Errorf("delete should run as DRed, not fall back: %+v", st)
	}

	// Now remove the last support: Employee membership must go too.
	delta = parse(t, ":Samuel a :Photographer .")
	base.RemoveBatch(delta)
	e.ApplyDelete(delta)
	if e.Graph().Contains(rdf.Triple{S: iri("Samuel"), P: typ(), O: iri("Employee")}) {
		t.Error("unsupported derivation survived its last premise")
	}
	requireEquivalent(t, e, base, "after second delete")
}

// TestDeleteExplicitFactSurvivesAsDerived: removing a base triple that
// is also derivable keeps it in G∞.
func TestDeleteExplicitFactSurvivesAsDerived(t *testing.T) {
	base := rdf.NewGraph()
	base.AddAll(parse(t, `
:A rdfs:subClassOf :B .
:x a :A .
:x a :B .
`))
	e := New(base, Config{})

	delta := parse(t, ":x a :B .")
	base.RemoveBatch(delta)
	e.ApplyDelete(delta)

	if !e.Graph().Contains(rdf.Triple{S: iri("x"), P: typ(), O: iri("B")}) {
		t.Error("(x type B) is still derivable from (x type A) and must survive its explicit deletion")
	}
	requireEquivalent(t, e, base, "after deleting a derivable explicit fact")
}

// TestDeleteSchemaFallsBack: deleting a schema triple cannot be
// maintained incrementally and must recompute.
func TestDeleteSchemaFallsBack(t *testing.T) {
	base := rdf.NewGraph()
	base.AddAll(parse(t, `
:A rdfs:subClassOf :B .
:x a :A .
`))
	e := New(base, Config{})

	delta := parse(t, ":A rdfs:subClassOf :B .")
	base.RemoveBatch(delta)
	e.ApplyDelete(delta)

	if e.Graph().Contains(rdf.Triple{S: iri("x"), P: typ(), O: iri("B")}) {
		t.Error("derivation survived the deletion of its schema premise")
	}
	requireEquivalent(t, e, base, "after schema delete")
	st := e.Stats()
	if st.FullRecomputes != 2 || st.DeltaApplies != 0 {
		t.Errorf("schema delete must fall back to a full recompute: %+v", st)
	}
}

// TestDeleteConeFallback: an over-deletion cone larger than the
// configured fraction of the graph abandons DRed.
func TestDeleteConeFallback(t *testing.T) {
	base := rdf.NewGraph()
	// One data triple whose deletion cones over a long class chain:
	// (s p o) types s as C0 via the domain, and C0 ⊑ C1 ⊑ … ⊑ C120
	// cascades that into 121 derived typings — past the absolute cone
	// floor, so a tiny MaxDeleteFraction must abandon DRed.
	ts := parse(t, ":p rdfs:domain :C0 .\n:s :p :o .")
	for i := 0; i < 120; i++ {
		ts = append(ts, parse(t, fmt.Sprintf(":C%d rdfs:subClassOf :C%d .", i, i+1))...)
	}
	base.AddAll(ts)
	e := New(base, Config{MaxDeleteFraction: 0.0001})

	delta := parse(t, ":s :p :o .")
	base.RemoveBatch(delta)
	e.ApplyDelete(delta)

	requireEquivalent(t, e, base, "after cone fallback")
	if st := e.Stats(); st.FullRecomputes != 2 || st.DeltaApplies != 0 {
		t.Errorf("oversized cone must force a full recompute: %+v", st)
	}
}

func TestRebuildPicksUpOutOfBandWrites(t *testing.T) {
	base := rdf.NewGraph()
	base.AddAll(parse(t, ":A rdfs:subClassOf :B ."))
	e := New(base, Config{})

	// Out-of-band write, invisible to the engine until Rebuild.
	base.AddAll(parse(t, ":x a :A ."))
	if e.Graph().Contains(rdf.Triple{S: iri("x"), P: typ(), O: iri("B")}) {
		t.Fatal("engine saw an out-of-band write without Rebuild")
	}
	e.Rebuild()
	if !e.Graph().Contains(rdf.Triple{S: iri("x"), P: typ(), O: iri("B")}) {
		t.Error("Rebuild did not re-saturate the out-of-band write")
	}
	requireEquivalent(t, e, base, "after rebuild")
}

func TestApplyNoopDelta(t *testing.T) {
	base := rdf.NewGraph()
	base.AddAll(parse(t, ":A rdfs:subClassOf :B .\n:x a :A ."))
	e := New(base, Config{})
	before := e.Stats()
	e.ApplyInsert(nil)
	e.ApplyDelete(nil)
	after := e.Stats()
	if after.DeltaApplies != before.DeltaApplies || after.FullRecomputes != before.FullRecomputes {
		t.Errorf("empty deltas moved counters: %+v -> %+v", before, after)
	}
}
