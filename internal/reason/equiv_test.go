package reason

import (
	"fmt"
	"math/rand"
	"testing"

	"tatooine/internal/rdf"
)

// randomTriple draws from a small closed vocabulary so that schema and
// data triples collide often enough to exercise every rule pairing:
// classes C0..C4, properties p0..p3, individuals x0..x7, the RDFS
// schema properties, and occasional literals.
func randomTriple(rng *rand.Rand) rdf.Triple {
	class := func() rdf.Term { return rdf.NewIRI(fmt.Sprintf("http://e/C%d", rng.Intn(5))) }
	prop := func() rdf.Term { return rdf.NewIRI(fmt.Sprintf("http://e/p%d", rng.Intn(4))) }
	indiv := func() rdf.Term { return rdf.NewIRI(fmt.Sprintf("http://e/x%d", rng.Intn(8))) }

	switch rng.Intn(10) {
	case 0: // subClassOf edge (cycles allowed)
		return rdf.Triple{S: class(), P: rdf.NewIRI(rdf.RDFSSubClassOf), O: class()}
	case 1: // subPropertyOf edge (cycles and self-loops allowed)
		return rdf.Triple{S: prop(), P: rdf.NewIRI(rdf.RDFSSubPropertyOf), O: prop()}
	case 2: // domain declaration
		return rdf.Triple{S: prop(), P: rdf.NewIRI(rdf.RDFSDomain), O: class()}
	case 3: // range declaration
		return rdf.Triple{S: prop(), P: rdf.NewIRI(rdf.RDFSRange), O: class()}
	case 4, 5: // typing
		return rdf.Triple{S: indiv(), P: rdf.NewIRI(rdf.RDFType), O: class()}
	case 6: // data triple with a literal object (rdfs3 must skip it)
		return rdf.Triple{S: indiv(), P: prop(), O: rdf.NewLiteral(fmt.Sprintf("lit%d", rng.Intn(3)))}
	default: // plain data triple
		return rdf.Triple{S: indiv(), P: prop(), O: indiv()}
	}
}

// TestEngineEquivalenceRandom drives the engine with random sequences
// of inserts and deletes (batches of 1-3 triples, schema and data
// mixed) and checks after EVERY step that the maintained G∞ is
// triple-identical to rdf.Saturate run from scratch on the base graph.
// Run twice: once with a cone budget that never falls back (DRed always
// exercised) and once with the default config (fallbacks exercised on
// the same sequences).
func TestEngineEquivalenceRandom(t *testing.T) {
	configs := []struct {
		name string
		cfg  Config
	}{
		{"dred-always", Config{MaxDeleteFraction: 1.0}},
		{"default-fallbacks", Config{}},
	}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 5; seed++ {
				rng := rand.New(rand.NewSource(seed))
				base := rdf.NewGraph()
				e := New(base, tc.cfg)
				for step := 0; step < 120; step++ {
					batch := make([]rdf.Triple, 1+rng.Intn(3))
					for i := range batch {
						batch[i] = randomTriple(rng)
					}
					// Bias toward inserts so the graph grows enough for
					// deletes to have consequences to retract.
					if rng.Intn(3) == 0 {
						removed := base.RemoveBatch(batch)
						e.ApplyDelete(removed)
					} else {
						added := base.AddBatch(batch)
						e.ApplyInsert(added)
					}
					requireEquivalent(t, e, base,
						fmt.Sprintf("%s seed %d step %d (base size %d)", tc.name, seed, step, base.Size()))
				}
				if st := e.Stats(); st.DeltaApplies == 0 {
					t.Errorf("seed %d: no delta applies recorded over 120 steps: %+v", seed, st)
				}
			}
		})
	}
}
