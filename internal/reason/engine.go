// Package reason maintains a materialized RDFS saturation G∞ under
// graph deltas, so a mutation-heavy mediator no longer pays a full
// recompute per epoch move.
//
// The paper (§2.1) defines a query's answer against G∞ — the base
// graph plus every RDFS-entailed triple. Recomputing G∞ from scratch
// (rdf.Saturate: clone the graph, run the fixpoint) is linear in the
// whole instance, which after PR 3's epoch-based invalidation meant a
// single-triple insert made the very next query pay seconds of
// redundant work on a large graph. Engine instead owns the materialized
// saturation and maintains it incrementally:
//
//   - ApplyInsert runs the semi-naive rules seeded only from the delta:
//     each inserted triple is joined against the saturated graph in
//     both premise positions of every rule (rdf.DeltaConsequences), and
//     fresh conclusions re-enter the frontier until the fixpoint. New
//     schema triples (subClassOf, subPropertyOf, domain, range) trigger
//     the targeted re-closure of exactly the affected hierarchy slices
//     — never a whole-graph pass.
//
//   - ApplyDelete implements delete-and-rederive (DRed): trace the
//     over-deletion cone of consequences transitively reachable from
//     the deleted triples (skipping explicit base facts, which survive
//     on their own), re-derive READ-ONLY the cone members that still
//     have a well-founded derivation from surviving triples
//     (rdf.DerivableExcept, bottom-up to a fixpoint), and only then
//     delete the remainder from the live graph. Two conditions fall
//     back to a full recompute: a deleted *schema* triple (its loss
//     can invalidate derivations anywhere), and an over-deletion cone
//     exceeding Config.MaxDeleteFraction of the saturated graph
//     (re-checking most of the graph costs more than recomputing it).
//
// The maintained graph is served live to queries. Visibility during an
// apply is monotone in the direction of the mutation: an insert only
// ever adds entailed triples, and a delete only ever removes
// no-longer-entailed ones (survivors are resurrected before any
// removal) — so a query overlapping an apply sees at worst a partially
// applied delta, never a state in which a triple entailed both before
// and after the mutation is missing. Epoch-keyed result caches stay
// safe because the instance bumps its epoch only after the apply
// completes.
package reason

import (
	"sync"
	"time"

	"tatooine/internal/rdf"
)

// DefaultMaxDeleteFraction bounds DRed's over-deletion cone relative to
// the saturated graph before ApplyDelete falls back to a full recompute.
const DefaultMaxDeleteFraction = 0.25

// minDeleteCone is the absolute cone size below which DRed never falls
// back: on small graphs a fraction rounds down to nearly nothing and
// re-deriving a handful of triples is always cheaper than a recompute.
const minDeleteCone = 64

// Config tunes an Engine.
type Config struct {
	// MaxDeleteFraction is the over-deletion cone size, as a fraction of
	// the saturated graph, beyond which ApplyDelete abandons DRed and
	// recomputes from scratch. Zero means DefaultMaxDeleteFraction;
	// values >= 1 never fall back on cone size.
	MaxDeleteFraction float64
	// SatFactory, when non-nil, supplies the empty graph a full rebuild
	// saturates into — the hook a persistent instance uses to keep G∞ on
	// durable storage (each rebuild gets a fresh store-backed graph).
	// Nil means rebuilds clone the base into a new in-memory graph.
	SatFactory func() *rdf.Graph
}

// Stats snapshots an engine's maintenance counters. It doubles as the
// "saturation" block of the mediator's /stats (core.Instance fills the
// same shape for the full-recompute ablation mode and when saturation
// is off).
type Stats struct {
	// Mode is "delta" (incrementally maintained), "full" (recompute per
	// epoch move, the ablation path) or "off" (no saturation).
	Mode string `json:"mode"`
	// Derived is the number of implicit triples currently materialized
	// (saturated size minus base size).
	Derived int `json:"derived"`
	// DeltaApplies counts mutations absorbed incrementally.
	DeltaApplies int64 `json:"deltaApplies"`
	// FullRecomputes counts full saturations: the initial build, DRed
	// fallbacks, and forced rebuilds.
	FullRecomputes int64 `json:"fullRecomputes"`
	// LastApply is the duration of the most recent apply (or rebuild).
	LastApply time.Duration `json:"lastApplyNs"`
}

// Engine wraps a base graph plus its materialized RDFS saturation and
// keeps the two consistent under deltas. The base graph is shared with
// the caller (core.Instance mutates it first, then feeds the delta in);
// the saturated graph is owned by the engine but read concurrently by
// queries, which is safe because rdf.Graph locks internally.
type Engine struct {
	mu   sync.Mutex
	base *rdf.Graph
	sat  *rdf.Graph
	cfg  Config

	deltaApplies   int64
	fullRecomputes int64
	lastApply      time.Duration
}

// New builds an engine over base, computing the initial saturation
// (counted as the first full recompute).
func New(base *rdf.Graph, cfg Config) *Engine {
	if cfg.MaxDeleteFraction <= 0 {
		cfg.MaxDeleteFraction = DefaultMaxDeleteFraction
	}
	e := &Engine{base: base, cfg: cfg}
	e.rebuildLocked()
	return e
}

// Adopt builds an engine over base that takes ownership of an ALREADY
// SATURATED graph instead of computing one — the warm-restart path: a
// persistent instance reopens its stored G∞ and resumes incremental
// maintenance with zero recompute. The caller asserts sat is the exact
// saturation of base; nothing is verified.
func Adopt(base, sat *rdf.Graph, cfg Config) *Engine {
	if cfg.MaxDeleteFraction <= 0 {
		cfg.MaxDeleteFraction = DefaultMaxDeleteFraction
	}
	return &Engine{base: base, sat: sat, cfg: cfg}
}

// Graph returns the maintained saturation G∞. Callers must treat it as
// read-only; it remains valid (as a pre-rebuild snapshot) even if the
// engine swaps it for a fresh one.
func (e *Engine) Graph() *rdf.Graph {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.sat
}

// Stats snapshots the engine's counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Stats{
		Mode:           "delta",
		Derived:        e.sat.Size() - e.base.Size(),
		DeltaApplies:   e.deltaApplies,
		FullRecomputes: e.fullRecomputes,
		LastApply:      e.lastApply,
	}
}

// Rebuild discards the maintained saturation and recomputes it from the
// base graph. Used when the base was mutated behind the engine's back
// (core.Instance.Invalidate's contract).
func (e *Engine) Rebuild() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rebuildLocked()
}

func (e *Engine) rebuildLocked() {
	start := time.Now()
	if e.cfg.SatFactory != nil {
		sat := e.cfg.SatFactory()
		e.base.CopyTo(sat)
		rdf.SaturateInPlace(sat)
		e.sat = sat
	} else {
		e.sat = rdf.Saturate(e.base).Graph
	}
	e.fullRecomputes++
	e.lastApply = time.Since(start)
}

// ApplyInsert absorbs triples just added to the base graph: they are
// added to the saturation and their consequences propagated semi-naive
// style, seeded only from the delta frontier. ts should be the actual
// delta (triples that were new to the base); triples whose consequences
// are already materialized cost one containment check each.
func (e *Engine) ApplyInsert(ts []rdf.Triple) {
	if len(ts) == 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	start := time.Now()
	e.insertLocked(ts)
	e.deltaApplies++
	e.lastApply = time.Since(start)
}

// insertLocked adds ts to the saturation and runs the delta rules to a
// fixpoint: every conclusion that was genuinely new re-enters the
// frontier, so chains (a new subClassOf edge re-typing instances that
// then feed rdfs9 again) close fully.
func (e *Engine) insertLocked(ts []rdf.Triple) {
	var frontier []rdf.Triple
	for _, t := range ts {
		if e.sat.Add(t) {
			frontier = append(frontier, t)
		}
	}
	for len(frontier) > 0 {
		var next []rdf.Triple
		for _, t := range frontier {
			rdf.DeltaConsequences(e.sat, t, func(c rdf.Triple) {
				if e.sat.Add(c) {
					next = append(next, c)
				}
			})
		}
		frontier = next
	}
}

// ApplyDelete absorbs triples just removed from the base graph using
// delete-and-rederive. ts should be the actual delta (triples that were
// present in the base). Falls back to a full recompute when a schema
// triple was deleted or the over-deletion cone exceeds
// Config.MaxDeleteFraction of the saturated graph.
func (e *Engine) ApplyDelete(ts []rdf.Triple) {
	if len(ts) == 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, t := range ts {
		if rdf.SchemaTriple(t) {
			e.rebuildLocked()
			return
		}
	}
	start := time.Now()

	// Over-delete: the cone of consequences transitively reachable from
	// the deleted triples, computed against the pre-deletion saturation
	// (a sound over-approximation: support that is itself doomed still
	// extends the cone). Explicit base facts are never coned — they
	// survive on their own and keep their consequences justified.
	maxCone := int(e.cfg.MaxDeleteFraction * float64(e.sat.Size()))
	if maxCone < minDeleteCone {
		maxCone = minDeleteCone
	}
	cone := make(map[rdf.Triple]struct{}, len(ts))
	var frontier []rdf.Triple
	for _, t := range ts {
		if !e.sat.Contains(t) {
			continue
		}
		cone[t] = struct{}{}
		frontier = append(frontier, t)
	}
	for len(frontier) > 0 {
		var next []rdf.Triple
		for _, t := range frontier {
			rdf.DeltaConsequences(e.sat, t, func(c rdf.Triple) {
				if _, ok := cone[c]; ok {
					return
				}
				if !e.sat.Contains(c) || e.base.Contains(c) {
					return
				}
				cone[c] = struct{}{}
				next = append(next, c)
			})
		}
		if len(cone) > maxCone {
			e.rebuildLocked()
			return
		}
		frontier = next
	}

	// Re-derive READ-ONLY before mutating anything: resurrect cone
	// members bottom-up — a member survives if one rule application
	// supports it from triples outside the (shrinking) dead set — until
	// a fixpoint. Mutual-support cycles with no external justification
	// are never resurrected. Only then delete what remains dead. Because
	// survivors never leave the live graph, a concurrent query can only
	// ever observe the genuinely retracted triples disappearing — never
	// a still-entailed triple missing mid-apply.
	dead := cone
	for changed := true; changed; {
		changed = false
		for t := range dead {
			if rdf.DerivableExcept(e.sat, t, dead) {
				delete(dead, t)
				changed = true
			}
		}
	}
	for t := range dead {
		e.sat.Remove(t)
	}
	e.deltaApplies++
	e.lastApply = time.Since(start)
}
