package pager

import "tatooine/internal/obs"

// Process-wide storage-engine metrics (internal/obs.Default): every
// pager in the process reports into the same families — the interesting
// signal is the page cache's hit ratio and the WAL's fsync latency, not
// which of usually-one pagers produced them.
var (
	pagerCacheHitTotal = obs.Default.Counter("tat_pager_cache_hits_total",
		"Page reads answered from dirty pages or the clock cache.")
	pagerCacheMissTotal = obs.Default.Counter("tat_pager_cache_misses_total",
		"Page reads that had to hit the WAL or the database file.")
	pagerEvictTotal = obs.Default.Counter("tat_pager_evictions_total",
		"Clean pages evicted from the clock cache under memory pressure.")
	pagerResidentPages = obs.Default.Gauge("tat_pager_resident_pages",
		"Pages currently held in memory across all pagers (clock-cache entries plus dirty transaction buffers).")
	walCommitTotal = obs.Default.Counter("tat_wal_commits_total",
		"WAL transactions committed.")
	walFsyncSeconds = obs.Default.Histogram("tat_wal_fsync_seconds",
		"WAL commit fsync latency.", obs.DurationBuckets())
)
