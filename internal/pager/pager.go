// Package pager implements the bottom layer of TATOOINE's storage
// engine: a fixed-size-page file with a clock page cache and a redo-only
// write-ahead log.
//
// The design follows the SQLite page model (PAPERS.md: abk171/gosqlite,
// khandu-utkarsh/codecrafters-sqlite-go walk the original format): the
// database file is an array of PageSize-byte pages addressed by PageID,
// page 0 is the file header, and every higher-level structure (B-trees,
// the store catalog) is built out of pages obtained from the pager.
// Unlike those readers, this pager also writes:
//
//   - Mutations go through Mut/Allocate and accumulate as in-memory
//     dirty copies; readers of the same pager see them immediately
//     (there is a single writer generation — transaction isolation is
//     provided by the locks of the structures above, not the pager).
//
//   - Commit appends the dirty pages to the WAL as checksummed frames
//     followed by a commit frame, fsyncs the WAL, and only then
//     publishes the pages to the cache. A crash before the commit
//     frame reaches disk rolls the whole transaction back on replay; a
//     crash after it replays the transaction completely — mutations
//     are atomic and durable at commit granularity.
//
//   - Checkpoint copies the newest committed version of every
//     WAL-resident page into the database file, fsyncs it, and resets
//     the WAL. Reads resolve dirty → cache → WAL → database file, so
//     checkpointing is purely a space/boot-time optimization.
//
// A pager opened with an empty path lives entirely in memory: no files,
// no WAL, commits are immediate. The in-memory mode backs the default
// store.Store so every structure above the pager is testable (and
// usable) without touching disk.
package pager

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// PageSize is the fixed page size in bytes.
const PageSize = 4096

// PageID addresses a page within the database file. Page 0 is the file
// header and is never handed out by Allocate.
type PageID uint32

const dbMagic = "TATPG001"

// headerSize is the used prefix of page 0: magic, page size, page
// count, free-list head, free-list length. Files written before the
// free list existed carry zeroes in the last two fields, which reads
// back as "empty free list" — exactly right.
const headerSize = 8 + 4 + 4 + 4 + 4

// Options tune a Pager.
type Options struct {
	// CacheSize bounds the clock page cache, in pages. Zero means
	// DefaultCacheSize; negative means unbounded (everything read stays
	// cached — the in-memory mode).
	CacheSize int
	// NoSync skips fsync on commit/checkpoint. Crash durability is
	// lost (torn tails are still detected); useful for benchmarks.
	NoSync bool
}

// DefaultCacheSize is the page-cache capacity when Options.CacheSize is
// zero: 4096 pages = 16 MiB.
const DefaultCacheSize = 4096

// Stats counts pager activity since open.
type Stats struct {
	Pages         int   `json:"pages"`         // allocated pages (incl. header)
	FreePages     int   `json:"freePages"`     // pages on the free list, reusable by Allocate
	ResidentPages int   `json:"residentPages"` // pages held in memory (cache + dirty buffers)
	CacheHits     int64 `json:"cacheHits"`     // reads served from cache or dirty set
	CacheMisses   int64 `json:"cacheMisses"`   // reads that went to WAL or db file
	Evictions     int64 `json:"evictions"`     // clean pages dropped from the cache under pressure
	WALBytes      int64 `json:"walBytes"`      // current WAL file length
	Commits       int64 `json:"commits"`       // committed transactions
	Checkpoints   int64 `json:"checkpoints"`   // completed checkpoints
}

// Pager is a page-granular storage manager. All methods are safe for
// concurrent use; writers of the structures above must still serialize
// themselves (the pager has one shared dirty set, not per-transaction
// snapshots).
type Pager struct {
	mu   sync.Mutex
	mem  bool
	db   *os.File
	wal  *wal
	opts Options

	pageCount          uint32
	committedPageCount uint32            // pageCount as of the last Commit
	dirty              map[PageID][]byte // mutated since last Commit
	cache              *clockCache

	// Free-list state mirrors the header fields (bytes 16..24 of page
	// 0): freeHead chains through the first 4 bytes of each free page.
	// The committed copies restore the mirror on Rollback; the header
	// page itself rolls back with the rest of the dirty set.
	freeHead          PageID
	freeCount         uint32
	committedFreeHead PageID
	committedFreeCnt  uint32

	hits, misses, commits, checkpoints, evictions int64
	lastResident                                  int // last value pushed to the resident gauge
}

// Open opens (or creates) the page file at path and replays any
// committed WAL tail next to it. An empty path opens a memory-only
// pager.
func Open(path string, opts Options) (*Pager, error) {
	if opts.CacheSize == 0 {
		opts.CacheSize = DefaultCacheSize
	}
	p := &Pager{
		opts:  opts,
		dirty: make(map[PageID][]byte),
	}
	if path == "" {
		p.mem = true
		p.cache = newClockCache(-1) // unbounded: the cache IS the storage
		p.pageCount = 1             // reserve the header page
		p.committedPageCount = 1
		return p, nil
	}
	p.cache = newClockCache(opts.CacheSize)

	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("pager: %w", err)
	}
	db, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: %w", err)
	}
	p.db = db
	st, err := db.Stat()
	if err != nil {
		db.Close()
		return nil, fmt.Errorf("pager: %w", err)
	}
	if st.Size() == 0 {
		// Fresh file: write the header page.
		hdr := make([]byte, PageSize)
		copy(hdr, dbMagic)
		binary.BigEndian.PutUint32(hdr[8:], PageSize)
		binary.BigEndian.PutUint32(hdr[12:], 1)
		if _, err := db.WriteAt(hdr, 0); err != nil {
			db.Close()
			return nil, fmt.Errorf("pager: init header: %w", err)
		}
		if !opts.NoSync {
			if err := db.Sync(); err != nil {
				db.Close()
				return nil, fmt.Errorf("pager: init header: %w", err)
			}
		}
	}

	w, err := openWAL(path+"-wal", opts.NoSync)
	if err != nil {
		db.Close()
		return nil, err
	}
	p.wal = w

	hdr, err := p.readPage(0)
	if err != nil {
		p.closeFiles()
		return nil, err
	}
	if string(hdr[:8]) != dbMagic {
		p.closeFiles()
		return nil, fmt.Errorf("pager: %s is not a tatooine page file", path)
	}
	if ps := binary.BigEndian.Uint32(hdr[8:]); ps != PageSize {
		p.closeFiles()
		return nil, fmt.Errorf("pager: %s has page size %d, want %d", path, ps, PageSize)
	}
	p.pageCount = binary.BigEndian.Uint32(hdr[12:])
	p.committedPageCount = p.pageCount
	p.freeHead = PageID(binary.BigEndian.Uint32(hdr[16:]))
	p.freeCount = binary.BigEndian.Uint32(hdr[20:])
	p.committedFreeHead, p.committedFreeCnt = p.freeHead, p.freeCount
	return p, nil
}

func (p *Pager) closeFiles() {
	if p.db != nil {
		p.db.Close()
	}
	if p.wal != nil {
		p.wal.close()
	}
}

// Mem reports whether the pager is memory-only.
func (p *Pager) Mem() bool { return p.mem }

// PageCount returns the number of allocated pages, including header.
func (p *Pager) PageCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return int(p.pageCount)
}

// View returns the current contents of the page. The returned slice is
// shared with the pager and MUST NOT be modified or retained across
// any pager write call; copy if needed.
func (p *Pager) View(id PageID) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.viewLocked(id)
}

func (p *Pager) viewLocked(id PageID) ([]byte, error) {
	if id >= PageID(p.pageCount) {
		return nil, fmt.Errorf("pager: page %d out of range (have %d)", id, p.pageCount)
	}
	if d, ok := p.dirty[id]; ok {
		p.hits++
		pagerCacheHitTotal.Inc()
		return d, nil
	}
	if d, ok := p.cache.get(id); ok {
		p.hits++
		pagerCacheHitTotal.Inc()
		return d, nil
	}
	p.misses++
	pagerCacheMissTotal.Inc()
	d, err := p.readPage(id)
	if err != nil {
		return nil, err
	}
	p.cachePut(id, d)
	return d, nil
}

// cachePut inserts into the clock cache, accounting evictions and the
// resident-page gauge.
func (p *Pager) cachePut(id PageID, d []byte) {
	if p.cache.put(id, d) {
		p.evictions++
		pagerEvictTotal.Inc()
	}
	p.updateResident()
}

// updateResident pushes the pager's in-memory page count (cache entries
// plus dirty transaction buffers — a page in both holds two buffers and
// counts twice) to the process-wide gauge as a delta, so concurrent
// pagers aggregate instead of overwriting each other.
func (p *Pager) updateResident() {
	resident := len(p.cache.entries) + len(p.dirty)
	if d := resident - p.lastResident; d != 0 {
		pagerResidentPages.Add(int64(d))
	}
	p.lastResident = resident
}

// readPage fetches a page from the WAL (newest committed frame) or the
// database file. Memory pagers never reach here: every live page is in
// the cache or dirty set.
func (p *Pager) readPage(id PageID) ([]byte, error) {
	if p.mem {
		// An allocated-but-never-written page reads as zeroes.
		return make([]byte, PageSize), nil
	}
	if d, ok, err := p.wal.readPage(id); err != nil {
		return nil, err
	} else if ok {
		return d, nil
	}
	buf := make([]byte, PageSize)
	n, err := p.db.ReadAt(buf, int64(id)*PageSize)
	if err != nil && n != PageSize {
		// Reading past EOF yields zeroes: the page was allocated in a
		// committed transaction but checkpointed before being written,
		// or the file simply hasn't grown yet.
		for i := n; i < PageSize; i++ {
			buf[i] = 0
		}
	}
	return buf, nil
}

// Mut returns a writable copy of the page, registered in the current
// transaction's dirty set. Successive Mut calls for the same page
// return the same buffer.
func (p *Pager) Mut(id PageID) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.mutLocked(id)
}

func (p *Pager) mutLocked(id PageID) ([]byte, error) {
	if id >= PageID(p.pageCount) {
		return nil, fmt.Errorf("pager: page %d out of range (have %d)", id, p.pageCount)
	}
	if d, ok := p.dirty[id]; ok {
		return d, nil
	}
	cur, err := p.viewLocked(id)
	if err != nil {
		return nil, err
	}
	d := make([]byte, PageSize)
	copy(d, cur)
	p.dirty[id] = d
	p.updateResident()
	return d, nil
}

// Allocate returns a zeroed page and its writable buffer (already in
// the dirty set): the head of the free list when one is there, a fresh
// page extending the file otherwise.
func (p *Pager) Allocate() (PageID, []byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.freeHead != 0 {
		id := p.freeHead
		d, err := p.mutLocked(id)
		if err != nil {
			return 0, nil, err
		}
		next := PageID(binary.BigEndian.Uint32(d[0:]))
		clear(d)
		p.freeHead = next
		p.freeCount--
		if err := p.syncHeaderLocked(); err != nil {
			return 0, nil, err
		}
		return id, d, nil
	}
	id := PageID(p.pageCount)
	p.pageCount++
	d := make([]byte, PageSize)
	p.dirty[id] = d
	p.updateResident()
	if err := p.syncHeaderLocked(); err != nil {
		return 0, nil, err
	}
	return id, d, nil
}

// Free returns a page to the free list for reuse by a later Allocate.
// The push is part of the current transaction (the link pointer and the
// header travel through the WAL with everything else), so a rollback
// un-frees the page and a crash recovers a consistent list. Freeing the
// header page or an out-of-range page is an error; freeing a page twice
// corrupts the list and is the caller's to avoid (the structures above
// free only pages they own exactly once).
func (p *Pager) Free(id PageID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if id == 0 || id >= PageID(p.pageCount) {
		return fmt.Errorf("pager: free page %d out of range (have %d)", id, p.pageCount)
	}
	d, err := p.mutLocked(id)
	if err != nil {
		return err
	}
	clear(d)
	binary.BigEndian.PutUint32(d[0:], uint32(p.freeHead))
	p.freeHead = id
	p.freeCount++
	return p.syncHeaderLocked()
}

// FreeCount returns the number of pages on the free list.
func (p *Pager) FreeCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return int(p.freeCount)
}

// FreePages walks the free list and returns the IDs on it, head first.
// The store's vacuum sweep uses it to tell freed pages from leaked
// ones.
func (p *Pager) FreePages() ([]PageID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]PageID, 0, p.freeCount)
	for id := p.freeHead; id != 0; {
		out = append(out, id)
		d, err := p.viewLocked(id)
		if err != nil {
			return nil, err
		}
		id = PageID(binary.BigEndian.Uint32(d[0:]))
		if len(out) > int(p.pageCount) {
			return nil, fmt.Errorf("pager: free list cycle detected")
		}
	}
	return out, nil
}

// syncHeaderLocked keeps the header page's count and free-list fields
// in step with the mirror, within the current transaction.
func (p *Pager) syncHeaderLocked() error {
	hdr, err := p.mutLocked(0)
	if err != nil {
		return err
	}
	if !p.mem {
		copy(hdr, dbMagic)
		binary.BigEndian.PutUint32(hdr[8:], PageSize)
	}
	binary.BigEndian.PutUint32(hdr[12:], p.pageCount)
	binary.BigEndian.PutUint32(hdr[16:], uint32(p.freeHead))
	binary.BigEndian.PutUint32(hdr[20:], p.freeCount)
	return nil
}

// Commit makes every mutation since the last Commit durable as one
// atomic transaction and publishes the pages to the read path.
func (p *Pager) Commit() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.dirty) == 0 {
		return nil
	}
	if !p.mem {
		if err := p.wal.commit(p.dirty); err != nil {
			return err
		}
	}
	for id, d := range p.dirty {
		p.cachePut(id, d)
		delete(p.dirty, id)
	}
	p.committedPageCount = p.pageCount
	p.committedFreeHead, p.committedFreeCnt = p.freeHead, p.freeCount
	p.commits++
	p.updateResident()
	return nil
}

// Rollback discards every mutation since the last Commit. The page
// count retreats with it: pages allocated by the aborted transaction
// are reused by the next one.
func (p *Pager) Rollback() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.dirty) == 0 {
		return
	}
	p.dirty = make(map[PageID][]byte)
	p.pageCount = p.committedPageCount
	p.freeHead, p.freeCount = p.committedFreeHead, p.committedFreeCnt
	p.updateResident()
}

// Checkpoint copies every committed WAL page into the database file,
// fsyncs it and resets the WAL. A crash during checkpointing is safe:
// the WAL is only reset after the database file is durable, so replay
// simply redoes the copy.
func (p *Pager) Checkpoint() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.mem {
		return nil
	}
	n, err := p.wal.checkpointInto(p.db, p.opts.NoSync)
	if err != nil {
		return err
	}
	if n > 0 {
		p.checkpoints++
	}
	return nil
}

// WALSize returns the current WAL length in bytes (0 for memory pagers).
func (p *Pager) WALSize() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.mem {
		return 0
	}
	return p.wal.size()
}

// Stats snapshots the pager counters.
func (p *Pager) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := Stats{
		Pages:         int(p.pageCount),
		FreePages:     int(p.freeCount),
		ResidentPages: len(p.cache.entries) + len(p.dirty),
		CacheHits:     p.hits,
		CacheMisses:   p.misses,
		Evictions:     p.evictions,
		Commits:       p.commits,
		Checkpoints:   p.checkpoints,
	}
	if !p.mem {
		st.WALBytes = p.wal.size()
	}
	return st
}

// Close flushes (checkpoint) and closes the pager. Uncommitted
// mutations are discarded — that is the crash the WAL protects against.
func (p *Pager) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.lastResident != 0 {
		pagerResidentPages.Add(int64(-p.lastResident))
		p.lastResident = 0
	}
	if p.mem {
		return nil
	}
	_, err := p.wal.checkpointInto(p.db, p.opts.NoSync)
	if cerr := p.db.Close(); err == nil {
		err = cerr
	}
	if cerr := p.wal.close(); err == nil {
		err = cerr
	}
	p.db, p.wal = nil, nil
	return err
}

// clockCache is a clock (second-chance) page cache.
type clockCache struct {
	cap     int // negative: unbounded
	entries map[PageID]*cacheEntry
	ring    []*cacheEntry
	hand    int
}

type cacheEntry struct {
	id   PageID
	data []byte
	ref  bool
}

func newClockCache(capacity int) *clockCache {
	return &clockCache{cap: capacity, entries: make(map[PageID]*cacheEntry)}
}

func (c *clockCache) get(id PageID) ([]byte, bool) {
	e, ok := c.entries[id]
	if !ok {
		return nil, false
	}
	e.ref = true
	return e.data, true
}

// put inserts (or refreshes) a page, reporting whether a clean page was
// evicted to make room. Only committed pages live here — dirty
// transaction buffers are pinned in the pager's dirty set until Commit,
// which is what keeps writeback ordering behind the WAL: a page can
// never reach the cache (and thus be the only copy) before its
// after-image is durable.
func (c *clockCache) put(id PageID, data []byte) (evicted bool) {
	if e, ok := c.entries[id]; ok {
		e.data, e.ref = data, true
		return false
	}
	e := &cacheEntry{id: id, data: data, ref: true}
	if c.cap < 0 || len(c.ring) < c.cap {
		c.entries[id] = e
		c.ring = append(c.ring, e)
		return false
	}
	// Advance the hand, giving referenced pages a second chance.
	for {
		victim := c.ring[c.hand]
		if victim.ref {
			victim.ref = false
			c.hand = (c.hand + 1) % len(c.ring)
			continue
		}
		delete(c.entries, victim.id)
		c.ring[c.hand] = e
		c.entries[id] = e
		c.hand = (c.hand + 1) % len(c.ring)
		return true
	}
}
