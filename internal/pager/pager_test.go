package pager

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

func tmpDB(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "test.db")
}

func TestMemRoundTrip(t *testing.T) {
	p, err := Open("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	id, page, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	copy(page, "hello")
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	got, err := p.View(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:5]) != "hello" {
		t.Fatalf("got %q", got[:5])
	}
}

func TestCommitDurableAcrossReopen(t *testing.T) {
	path := tmpDB(t)
	p, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	id, page, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	copy(page, "persisted")
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	// No checkpoint, no Close: simulate a crash by just reopening. The
	// committed page must come back from the WAL.
	p2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if got := p2.PageCount(); got != int(id)+1 {
		t.Fatalf("page count = %d, want %d", got, id+1)
	}
	d, err := p2.View(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(d[:9]) != "persisted" {
		t.Fatalf("got %q", d[:9])
	}
}

func TestUncommittedRollsBackOnReopen(t *testing.T) {
	path := tmpDB(t)
	p, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	id, page, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	copy(page, "committed")
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	// Mutate without committing: must vanish on reopen.
	mut, err := p.Mut(id)
	if err != nil {
		t.Fatal(err)
	}
	copy(mut, "uncommitted")
	if _, _, err := p.Allocate(); err != nil {
		t.Fatal(err)
	}

	p2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	d, err := p2.View(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(d[:9]) != "committed" {
		t.Fatalf("got %q, want the committed image", d[:11])
	}
	if got := p2.PageCount(); got != int(id)+1 {
		t.Fatalf("page count = %d, want %d (uncommitted allocation must roll back)", got, id+1)
	}
}

func TestTornWALTailIgnored(t *testing.T) {
	path := tmpDB(t)
	p, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	id, page, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	copy(page, "good")
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a page frame with no commit frame,
	// then garbage.
	f, err := os.OpenFile(path+"-wal", os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, 4+PageSize+4)
	binary.BigEndian.PutUint32(frame, uint32(id))
	copy(frame[4:], bytes.Repeat([]byte("evil"), 1024))
	if _, err := f.Write(frame); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("torn-tail-garbage")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	p2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	d, err := p2.View(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(d[:4]) != "good" {
		t.Fatalf("got %q, torn tail must not replay", d[:4])
	}
}

func TestCheckpointMovesPagesToDB(t *testing.T) {
	path := tmpDB(t)
	p, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	id, page, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	copy(page, "checkpointed")
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Checkpoints != 1 {
		t.Fatalf("checkpoints = %d, want 1", st.Checkpoints)
	}
	if st.WALBytes != 8 {
		t.Fatalf("wal bytes = %d, want header only (8)", st.WALBytes)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// The page must now come from the database file.
	p2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	d, err := p2.View(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(d[:12]) != "checkpointed" {
		t.Fatalf("got %q", d[:12])
	}
}

func TestRollbackDiscardsDirty(t *testing.T) {
	p, err := Open("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	id, page, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	copy(page, "keep")
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	mut, err := p.Mut(id)
	if err != nil {
		t.Fatal(err)
	}
	copy(mut, "drop")
	if _, _, err := p.Allocate(); err != nil {
		t.Fatal(err)
	}
	p.Rollback()
	d, err := p.View(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(d[:4]) != "keep" {
		t.Fatalf("got %q after rollback", d[:4])
	}
	if p.PageCount() != int(id)+1 {
		t.Fatalf("page count = %d after rollback, want %d", p.PageCount(), id+1)
	}
	// The rolled-back page id must be reusable.
	id2, _, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if id2 != id+1 {
		t.Fatalf("allocate after rollback = %d, want %d", id2, id+1)
	}
}

func TestCacheEviction(t *testing.T) {
	path := tmpDB(t)
	p, err := Open(path, Options{CacheSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var ids []PageID
	for i := 0; i < 16; i++ {
		id, page, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		page[0] = byte(i)
		ids = append(ids, id)
	}
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		d, err := p.View(id)
		if err != nil {
			t.Fatal(err)
		}
		if d[0] != byte(i) {
			t.Fatalf("page %d: got %d want %d", id, d[0], i)
		}
	}
	st := p.Stats()
	if st.CacheMisses == 0 {
		t.Fatal("expected cache misses with a 4-page cache over 16 pages")
	}
}

// TestRepeatedOpenCloseCycles pins a recovery regression: reopening a
// checkpointed WAL (header only, no committed frames) must keep the
// header as the valid length — an early version truncated such a WAL
// to zero bytes, so the next commit wrote frames where the header
// belongs and the THIRD open failed with "bad header".
func TestRepeatedOpenCloseCycles(t *testing.T) {
	path := tmpDB(t)
	var id PageID
	for cycle := 0; cycle < 4; cycle++ {
		p, err := Open(path, Options{})
		if err != nil {
			t.Fatalf("cycle %d: open: %v", cycle, err)
		}
		if cycle == 0 {
			var page []byte
			id, page, err = p.Allocate()
			if err != nil {
				t.Fatal(err)
			}
			copy(page, "cycled")
		} else {
			d, err := p.View(id)
			if err != nil {
				t.Fatalf("cycle %d: view: %v", cycle, err)
			}
			if string(d[:6]) != "cycled" {
				t.Fatalf("cycle %d: got %q", cycle, d[:6])
			}
			// Dirty the page again so every cycle commits fresh frames
			// into the just-reopened WAL.
			w, err := p.Mut(id)
			if err != nil {
				t.Fatal(err)
			}
			copy(w, "cycled")
		}
		if err := p.Commit(); err != nil {
			t.Fatalf("cycle %d: commit: %v", cycle, err)
		}
		// Close checkpoints, leaving a header-only WAL behind.
		if err := p.Close(); err != nil {
			t.Fatalf("cycle %d: close: %v", cycle, err)
		}
	}
}

func TestFreeListReuseAndPersistence(t *testing.T) {
	path := tmpDB(t)
	p, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var ids []PageID
	for i := 0; i < 5; i++ {
		id, page, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		page[0] = byte(i + 1)
		ids = append(ids, id)
	}
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := p.Free(ids[1]); err != nil {
		t.Fatal(err)
	}
	if err := p.Free(ids[3]); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := p.FreeCount(); got != 2 {
		t.Fatalf("free count = %d, want 2", got)
	}
	before := p.PageCount()
	// Reopen: the free list must survive and feed allocations before
	// the file grows.
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p, err = Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if got := p.FreeCount(); got != 2 {
		t.Fatalf("free count after reopen = %d, want 2", got)
	}
	seen := map[PageID]bool{}
	for i := 0; i < 2; i++ {
		id, page, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range page {
			if b != 0 {
				t.Fatal("reused page not zeroed")
			}
		}
		seen[id] = true
	}
	if !seen[ids[1]] || !seen[ids[3]] {
		t.Fatalf("allocations %v did not reuse freed pages %v/%v", seen, ids[1], ids[3])
	}
	if p.PageCount() != before {
		t.Fatalf("file grew to %d pages despite free list (was %d)", p.PageCount(), before)
	}
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := p.FreeCount(); got != 0 {
		t.Fatalf("free count after reuse = %d, want 0", got)
	}
}

func TestFreeRollsBackWithTransaction(t *testing.T) {
	p, err := Open(tmpDB(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	id, page, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	copy(page, "keep")
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := p.Free(id); err != nil {
		t.Fatal(err)
	}
	p.Rollback()
	if got := p.FreeCount(); got != 0 {
		t.Fatalf("free count after rollback = %d, want 0", got)
	}
	d, err := p.View(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(d[:4]) != "keep" {
		t.Fatalf("rolled-back free clobbered page: %q", d[:4])
	}
}

func TestFreePagesEnumeratesChain(t *testing.T) {
	p, err := Open(tmpDB(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var ids []PageID
	for i := 0; i < 4; i++ {
		id, _, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		if err := p.Free(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	free, err := p.FreePages()
	if err != nil {
		t.Fatal(err)
	}
	if len(free) != 4 {
		t.Fatalf("FreePages = %v, want 4 entries", free)
	}
	want := map[PageID]bool{}
	for _, id := range ids {
		want[id] = true
	}
	for _, id := range free {
		if !want[id] {
			t.Fatalf("unexpected free page %d", id)
		}
	}
}
