package pager

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"time"
)

// The WAL is a redo-only log: a header followed by frames. Each page
// frame carries the after-image of one page; a commit frame seals the
// frames since the previous commit into one atomic transaction.
//
//	header:      "TATWAL01"                                  (8 bytes)
//	page frame:  pageID u32 | page[PageSize] | crc u32       (4+4096+4)
//	commit frame: 0xFFFFFFFF | nPages u32    | crc u32       (4+4+4)
//
// The crc covers everything before it in the frame. Replay scans
// sequentially, buffering page frames and publishing them to the page
// index only when a valid commit frame arrives; a torn tail (short
// frame, bad crc, or trailing uncommitted frames) is truncated away.
const walMagic = "TATWAL01"

const commitID = 0xFFFFFFFF

type wal struct {
	f      *os.File
	length int64            // valid (committed) length
	index  map[PageID]int64 // page -> offset of newest committed after-image
	noSync bool
}

func openWAL(path string, noSync bool) (*wal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: wal: %w", err)
	}
	w := &wal{f: f, index: make(map[PageID]int64), noSync: noSync}
	if err := w.replay(); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// replay scans the log, building the page index from committed
// transactions, and truncates any torn tail.
func (w *wal) replay() error {
	st, err := w.f.Stat()
	if err != nil {
		return fmt.Errorf("pager: wal: %w", err)
	}
	if st.Size() == 0 {
		if _, err := w.f.WriteAt([]byte(walMagic), 0); err != nil {
			return fmt.Errorf("pager: wal: %w", err)
		}
		w.length = int64(len(walMagic))
		return nil
	}
	hdr := make([]byte, len(walMagic))
	if _, err := io.ReadFull(io.NewSectionReader(w.f, 0, int64(len(hdr))), hdr); err != nil || string(hdr) != walMagic {
		return fmt.Errorf("pager: wal: bad header")
	}
	// The valid length is at least the header, even if no committed
	// transaction follows — otherwise the torn-tail truncate below
	// would chop the header off a checkpointed (header-only) WAL.
	w.length = int64(len(walMagic))
	off := int64(len(walMagic))
	pending := make(map[PageID]int64)
	var frame [4 + PageSize + 4]byte
	for {
		// Peek the frame id to distinguish page frames from commit frames.
		var idbuf [4]byte
		if _, err := w.f.ReadAt(idbuf[:], off); err != nil {
			break // clean EOF or torn tail: stop
		}
		id := binary.BigEndian.Uint32(idbuf[:])
		if id == commitID {
			var cbuf [12]byte
			if _, err := w.f.ReadAt(cbuf[:], off); err != nil {
				break
			}
			if crc32.ChecksumIEEE(cbuf[:8]) != binary.BigEndian.Uint32(cbuf[8:]) {
				break
			}
			for pid, poff := range pending {
				w.index[pid] = poff
				delete(pending, pid)
			}
			off += 12
			w.length = off
			continue
		}
		if _, err := w.f.ReadAt(frame[:], off); err != nil {
			break
		}
		if crc32.ChecksumIEEE(frame[:4+PageSize]) != binary.BigEndian.Uint32(frame[4+PageSize:]) {
			break
		}
		pending[PageID(id)] = off + 4 // offset of the page image
		off += int64(len(frame))
	}
	// Drop anything past the last committed transaction (torn tail or
	// frames whose commit never made it).
	if err := w.f.Truncate(w.length); err != nil {
		return fmt.Errorf("pager: wal: truncate torn tail: %w", err)
	}
	return nil
}

// readPage returns the newest committed after-image of the page, if the
// WAL holds one.
func (w *wal) readPage(id PageID) ([]byte, bool, error) {
	off, ok := w.index[id]
	if !ok {
		return nil, false, nil
	}
	buf := make([]byte, PageSize)
	if _, err := w.f.ReadAt(buf, off); err != nil {
		return nil, false, fmt.Errorf("pager: wal read page %d: %w", id, err)
	}
	return buf, true, nil
}

// commit appends one transaction: a frame per dirty page plus a commit
// frame, then fsyncs. Only after a successful fsync is the page index
// updated, so a failed commit leaves the read path untouched.
func (w *wal) commit(dirty map[PageID][]byte) error {
	ids := make([]PageID, 0, len(dirty))
	for id := range dirty {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	buf := make([]byte, 0, len(ids)*(4+PageSize+4)+12)
	offsets := make(map[PageID]int64, len(ids))
	var u32 [4]byte
	for _, id := range ids {
		binary.BigEndian.PutUint32(u32[:], uint32(id))
		start := len(buf)
		buf = append(buf, u32[:]...)
		buf = append(buf, dirty[id]...)
		binary.BigEndian.PutUint32(u32[:], crc32.ChecksumIEEE(buf[start:]))
		buf = append(buf, u32[:]...)
		offsets[id] = w.length + int64(start) + 4 // offset of the page image
	}
	var cframe [12]byte
	binary.BigEndian.PutUint32(cframe[0:], commitID)
	binary.BigEndian.PutUint32(cframe[4:], uint32(len(ids)))
	binary.BigEndian.PutUint32(cframe[8:], crc32.ChecksumIEEE(cframe[:8]))
	buf = append(buf, cframe[:]...)

	if _, err := w.f.WriteAt(buf, w.length); err != nil {
		return fmt.Errorf("pager: wal commit: %w", err)
	}
	if !w.noSync {
		start := time.Now()
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("pager: wal commit: %w", err)
		}
		walFsyncSeconds.ObserveSince(start)
	}
	walCommitTotal.Inc()
	w.length += int64(len(buf))
	for id, o := range offsets {
		w.index[id] = o
	}
	return nil
}

// checkpointInto copies the newest committed after-image of every
// WAL-resident page into the database file, fsyncs it, then resets the
// WAL. Returns the number of pages checkpointed.
func (w *wal) checkpointInto(db *os.File, noSync bool) (int, error) {
	if len(w.index) == 0 {
		return 0, nil
	}
	n := 0
	for id, off := range w.index {
		buf := make([]byte, PageSize)
		if _, err := w.f.ReadAt(buf, off); err != nil {
			return n, fmt.Errorf("pager: checkpoint read page %d: %w", id, err)
		}
		if _, err := db.WriteAt(buf, int64(id)*PageSize); err != nil {
			return n, fmt.Errorf("pager: checkpoint write page %d: %w", id, err)
		}
		n++
	}
	if !noSync {
		if err := db.Sync(); err != nil {
			return n, fmt.Errorf("pager: checkpoint: %w", err)
		}
	}
	// The database file is durable; the WAL can restart. Order matters:
	// truncating before the db fsync could lose committed pages.
	if err := w.f.Truncate(int64(len(walMagic))); err != nil {
		return n, fmt.Errorf("pager: checkpoint: %w", err)
	}
	w.length = int64(len(walMagic))
	w.index = make(map[PageID]int64)
	if !noSync {
		if err := w.f.Sync(); err != nil {
			return n, fmt.Errorf("pager: checkpoint: %w", err)
		}
	}
	return n, nil
}

func (w *wal) size() int64 { return w.length }

func (w *wal) close() error { return w.f.Close() }
