package federation

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"tatooine/internal/source"
	"tatooine/internal/value"
)

var batchQuery = source.SubQuery{
	Language: source.LangSQL,
	Text:     "SELECT name, population FROM departements WHERE code = ?",
	InVars:   []string{"code"},
}

func codes(ss ...string) []value.Row {
	out := make([]value.Row, len(ss))
	for i, s := range ss {
		out[i] = value.Row{value.NewString(s)}
	}
	return out
}

// TestRemoteBatchRoundTrip ships a whole batch as one HTTP request and
// checks the per-tuple results match per-tuple remote execution.
func TestRemoteBatchRoundTrip(t *testing.T) {
	srv, _ := servedRelSource(t)
	var requests atomic.Int64
	counting := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		srv.Config.Handler.ServeHTTP(w, r)
	}))
	t.Cleanup(counting.Close)

	c, err := Dial(counting.URL)
	if err != nil {
		t.Fatal(err)
	}
	requests.Store(0) // forget the /meta dial

	sets := codes("75", "92", "00")
	results, err := c.ExecuteBatch(batchQuery, sets)
	if err != nil {
		t.Fatal(err)
	}
	if got := requests.Load(); got != 1 {
		t.Errorf("batch used %d HTTP requests, want 1", got)
	}
	serial, err := source.ExecuteSerially(c, batchQuery, sets)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(sets) {
		t.Fatalf("results: %d", len(results))
	}
	for i := range sets {
		if len(results[i].Rows) != len(serial[i].Rows) {
			t.Fatalf("tuple %d: %d rows batched, %d per-probe", i, len(results[i].Rows), len(serial[i].Rows))
		}
		for j := range results[i].Rows {
			if results[i].Rows[j].Key() != serial[i].Rows[j].Key() {
				t.Errorf("tuple %d row %d: %v vs %v", i, j, results[i].Rows[j], serial[i].Rows[j])
			}
		}
	}
}

// unbatchableSource hides RelSource's BatchProber so the endpoint must
// take its serial server-side path.
type unbatchableSource struct{ source.DataSource }

func TestBatchEndpointServerSideLoopForPlainSources(t *testing.T) {
	_, db := servedRelSource(t)
	srv := httptest.NewServer(Handler(unbatchableSource{source.NewRelSource("sql://insee", db)}))
	t.Cleanup(srv.Close)
	c, err := Dial(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	results, err := c.ExecuteBatch(batchQuery, codes("75", "92"))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Len() != 1 || results[0].Rows[0][0].Str() != "Paris" {
		t.Errorf("server-side loop results: %+v", results)
	}
}

// TestBatchAgainstOldEndpointUnsupported checks a remote without the
// /batch route makes ExecuteBatch report ErrBatchUnsupported, so the
// executor's per-tuple fallback (via /query) still works.
func TestBatchAgainstOldEndpointUnsupported(t *testing.T) {
	srv, _ := servedRelSource(t)
	var batchHits atomic.Int64
	old := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/batch" {
			batchHits.Add(1)
			http.NotFound(w, r)
			return
		}
		srv.Config.Handler.ServeHTTP(w, r)
	}))
	t.Cleanup(old.Close)
	c, err := Dial(old.URL)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.ExecuteBatch(batchQuery, codes("75"))
	if !errors.Is(err, source.ErrBatchUnsupported) {
		t.Errorf("err = %v, want ErrBatchUnsupported", err)
	}
	// The 404 latches: later batches fall back without re-trying the
	// route.
	_, err = c.ExecuteBatch(batchQuery, codes("92"))
	if !errors.Is(err, source.ErrBatchUnsupported) {
		t.Errorf("second batch err = %v, want ErrBatchUnsupported", err)
	}
	if got := batchHits.Load(); got != 1 {
		t.Errorf("/batch tried %d times, want 1 (latched after the first 404)", got)
	}
	res, err := c.Execute(batchQuery, []value.Value{value.NewString("75")})
	if err != nil || res.Len() != 1 {
		t.Errorf("per-tuple fallback: %v, %+v", err, res)
	}
}

// TestBatchEndpointError surfaces a remote execution error.
func TestBatchEndpointError(t *testing.T) {
	srv, _ := servedRelSource(t)
	c, err := Dial(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	bad := source.SubQuery{Language: source.LangSQL, Text: "SELECT x FROM missing WHERE x = ?", InVars: []string{"x"}}
	if _, err := c.ExecuteBatch(bad, codes("1")); err == nil {
		t.Error("expected remote error for unknown table")
	}
}
