package federation

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"tatooine/internal/source"
)

// brokenProxy serves valid /meta (so Dial succeeds) but answers /query
// like a misconfigured reverse proxy: a non-JSON error page.
func brokenProxy(t *testing.T, status int, body string) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /meta", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"uri":"sql://insee","model":"relational","languages":["sql"]}`))
	})
	mux.HandleFunc("POST /query", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		w.WriteHeader(status)
		_, _ = w.Write([]byte(body))
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestExecuteNonJSONErrorReportsStatus is the regression test for the
// decode-before-status bug: a proxy 502 with an HTML body must surface
// as the HTTP status, not as a JSON decode failure.
func TestExecuteNonJSONErrorReportsStatus(t *testing.T) {
	srv := brokenProxy(t, http.StatusBadGateway, "<html><body>502 Bad Gateway</body></html>")
	c, err := Dial(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Execute(source.SubQuery{Language: source.LangSQL, Text: "SELECT 1"}, nil)
	if err == nil {
		t.Fatal("expected error from 502 endpoint")
	}
	if !strings.Contains(err.Error(), "502") {
		t.Errorf("error does not report the HTTP status: %v", err)
	}
	if strings.Contains(err.Error(), "bad response") {
		t.Errorf("error still surfaces as a decode failure: %v", err)
	}
}

// TestExecuteJSONErrorKeepsMessage: when the endpoint does send a JSON
// error with a non-200 status, both the status and the message survive.
func TestExecuteJSONErrorKeepsMessage(t *testing.T) {
	srv := brokenProxy(t, http.StatusUnprocessableEntity, `{"error":"no such table"}`)
	c, err := Dial(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Execute(source.SubQuery{Language: source.LangSQL, Text: "SELECT 1"}, nil)
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "422") || !strings.Contains(err.Error(), "no such table") {
		t.Errorf("error lost status or message: %v", err)
	}
}
