package federation

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"tatooine/internal/digest"
	"tatooine/internal/source"
)

// brokenProxy serves valid /meta (so Dial succeeds) but answers /query
// like a misconfigured reverse proxy: a non-JSON error page.
func brokenProxy(t *testing.T, status int, body string) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /meta", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"uri":"sql://insee","model":"relational","languages":["sql"]}`))
	})
	failing := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		w.WriteHeader(status)
		_, _ = w.Write([]byte(body))
	}
	mux.HandleFunc("POST /query", failing)
	mux.HandleFunc("POST /estimate", failing)
	mux.HandleFunc("GET /digest", failing)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestExecuteNonJSONErrorReportsStatus is the regression test for the
// decode-before-status bug: a proxy 502 with an HTML body must surface
// as the HTTP status, not as a JSON decode failure.
func TestExecuteNonJSONErrorReportsStatus(t *testing.T) {
	srv := brokenProxy(t, http.StatusBadGateway, "<html><body>502 Bad Gateway</body></html>")
	c, err := Dial(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Execute(source.SubQuery{Language: source.LangSQL, Text: "SELECT 1"}, nil)
	if err == nil {
		t.Fatal("expected error from 502 endpoint")
	}
	if !strings.Contains(err.Error(), "502") {
		t.Errorf("error does not report the HTTP status: %v", err)
	}
	if strings.Contains(err.Error(), "bad response") {
		t.Errorf("error still surfaces as a decode failure: %v", err)
	}
}

// TestExecuteJSONErrorKeepsMessage: when the endpoint does send a JSON
// error with a non-200 status, both the status and the message survive.
func TestExecuteJSONErrorKeepsMessage(t *testing.T) {
	srv := brokenProxy(t, http.StatusUnprocessableEntity, `{"error":"no such table"}`)
	c, err := Dial(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Execute(source.SubQuery{Language: source.LangSQL, Text: "SELECT 1"}, nil)
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "422") || !strings.Contains(err.Error(), "no such table") {
		t.Errorf("error lost status or message: %v", err)
	}
}

// TestEstimateCostNonOKIsUnknown is the regression test for the
// trust-the-body bug: a 404/502 whose JSON (or HTML) error envelope
// decodes with Cost: 0 used to make a broken remote look like the
// cheapest source in the plan. Any non-OK status must degrade to
// unknown (-1).
func TestEstimateCostNonOKIsUnknown(t *testing.T) {
	for name, srv := range map[string]*httptest.Server{
		"html 502":           brokenProxy(t, http.StatusBadGateway, "<html>502</html>"),
		"json error 404":     brokenProxy(t, http.StatusNotFound, `{"cost":0,"error":"no such route"}`),
		"json zero-cost 500": brokenProxy(t, http.StatusInternalServerError, `{"cost":0}`),
	} {
		c, err := Dial(srv.URL)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := c.EstimateCost(source.SubQuery{Language: source.LangSQL, Text: "SELECT 1"}, 0); got != -1 {
			t.Errorf("%s: EstimateCost = %d, want -1", name, got)
		}
	}
}

// TestEstimateCostErrorEnvelopeIsUnknown: even a 200 whose body names
// an error must not be trusted for its zero Cost.
func TestEstimateCostErrorEnvelopeIsUnknown(t *testing.T) {
	srv := brokenProxy(t, http.StatusOK, `{"cost":0,"error":"estimator offline"}`)
	c, err := Dial(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.EstimateCost(source.SubQuery{Language: source.LangSQL, Text: "SELECT 1"}, 0); got != -1 {
		t.Errorf("EstimateCost with error envelope = %d, want -1", got)
	}
}

// TestDialErrorStatusKeepsMessage: a non-OK /meta surfaces the status
// (and any JSON error message) instead of a decode failure, reading
// the error body through a bounded reader.
func TestDialErrorStatusKeepsMessage(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /meta", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte(`{"error":"warming up"}`))
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	_, err := Dial(srv.URL)
	if err == nil {
		t.Fatal("Dial of a 503 endpoint succeeded")
	}
	if !strings.Contains(err.Error(), "503") || !strings.Contains(err.Error(), "warming up") {
		t.Errorf("dial error lost status or message: %v", err)
	}
}

// TestDigestErrorStatusKeepsMessage: same contract for GET /digest.
func TestDigestErrorStatusKeepsMessage(t *testing.T) {
	srv := brokenProxy(t, http.StatusBadGateway, "<html>502</html>")
	c, err := Dial(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Digest(digest.DefaultBudget()); err == nil || !strings.Contains(err.Error(), "502") {
		t.Errorf("digest error does not report the HTTP status: %v", err)
	}
}
