package federation

import (
	"net/http/httptest"
	"testing"

	"tatooine/internal/rdf"
	"tatooine/internal/relstore"
	"tatooine/internal/source"
	"tatooine/internal/value"
)

func servedRelSource(t *testing.T) (*httptest.Server, *relstore.Database) {
	t.Helper()
	db := relstore.NewDatabase("insee")
	for _, q := range []string{
		"CREATE TABLE departements (code TEXT PRIMARY KEY, name TEXT, population INT)",
		"INSERT INTO departements VALUES ('75','Paris',2187526), ('92','Hauts-de-Seine',1609306)",
	} {
		if _, err := db.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	src := source.NewRelSource("sql://insee", db)
	srv := httptest.NewServer(Handler(src))
	t.Cleanup(srv.Close)
	return srv, db
}

func TestDialMeta(t *testing.T) {
	srv, _ := servedRelSource(t)
	c, err := Dial(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if c.URI() != "sql://insee" {
		t.Errorf("uri: %s", c.URI())
	}
	if c.Model() != source.RelationalModel {
		t.Errorf("model: %v", c.Model())
	}
	if len(c.Languages()) != 1 || c.Languages()[0] != source.LangSQL {
		t.Errorf("langs: %v", c.Languages())
	}
}

func TestRemoteQueryRoundTrip(t *testing.T) {
	srv, _ := servedRelSource(t)
	c, err := Dial(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Execute(source.SubQuery{
		Language: source.LangSQL,
		Text:     "SELECT name, population FROM departements WHERE code = ?",
	}, []value.Value{value.NewString("92")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0][0].Str() != "Hauts-de-Seine" {
		t.Errorf("rows: %+v", res.Rows)
	}
	// Value kinds must survive the wire.
	if res.Rows[0][1].Kind() != value.Int || res.Rows[0][1].Int() != 1609306 {
		t.Errorf("population kind/value: %v %v", res.Rows[0][1].Kind(), res.Rows[0][1])
	}
}

func TestRemoteQueryError(t *testing.T) {
	srv, _ := servedRelSource(t)
	c, _ := Dial(srv.URL)
	_, err := c.Execute(source.SubQuery{
		Language: source.LangSQL,
		Text:     "SELECT nope FROM missing",
	}, nil)
	if err == nil {
		t.Error("remote error not propagated")
	}
}

func TestRemoteEstimate(t *testing.T) {
	srv, _ := servedRelSource(t)
	c, _ := Dial(srv.URL)
	cost := c.EstimateCost(source.SubQuery{
		Language: source.LangSQL,
		Text:     "SELECT * FROM departements",
	}, 0)
	if cost != 2 {
		t.Errorf("remote estimate: %d", cost)
	}
}

func TestRemoteRDFSource(t *testing.T) {
	g := rdf.NewGraph()
	g.AddAll(rdf.MustParse(`
@prefix : <http://t.example/> .
:POL1 :twitterAccount "fhollande" .
:POL2 :twitterAccount "jdupont" .
`))
	src := source.NewRDFSource("rdf://politics", g, false)
	srv := httptest.NewServer(Handler(src))
	defer srv.Close()

	c, err := Dial(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Execute(source.SubQuery{
		Language: source.LangBGP,
		Text:     `q(?x, ?id) :- ?x <http://t.example/twitterAccount> ?id`,
		InVars:   []string{"id"},
	}, []value.Value{value.NewString("fhollande")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0][0].Str() != "http://t.example/POL1" {
		t.Errorf("remote bgp: %+v", res.Rows)
	}
}

func TestDialBadEndpoint(t *testing.T) {
	if _, err := Dial("http://127.0.0.1:1/nope"); err == nil {
		t.Error("dial to closed port should fail")
	}
}

func TestResolverDynamicDiscovery(t *testing.T) {
	srv, _ := servedRelSource(t)
	reg := source.NewRegistry()
	reg.SetFallback(Resolver())
	// The URI is "discovered" at runtime (it is the test server's URL,
	// as if read from an INSEE table) and resolved through the fallback.
	src, err := reg.Resolve(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	res, err := src.Execute(source.SubQuery{
		Language: source.LangSQL,
		Text:     "SELECT COUNT(*) FROM departements",
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 2 {
		t.Errorf("dynamic discovery query: %+v", res.Rows)
	}
}
