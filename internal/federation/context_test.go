package federation

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"tatooine/internal/source"
	"tatooine/internal/value"
)

// TestExecuteContextCancelAbortsInFlightRequest proves cancelling the
// query context aborts an in-flight remote probe mid-request instead
// of waiting out the remote: the handler blocks until the *server*
// sees the client disconnect, so the probe can only return promptly if
// the HTTP request really was torn down.
func TestExecuteContextCancelAbortsInFlightRequest(t *testing.T) {
	started := make(chan struct{})
	blocking := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/meta" { // let Dial through
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write([]byte(`{"uri":"sql://slow","model":"relational","languages":["sql"]}`))
			return
		}
		// Drain the body: the server only watches for a client disconnect
		// (and cancels r.Context()) once the request body is consumed.
		_, _ = io.ReadAll(r.Body)
		close(started)
		<-r.Context().Done() // blocks until the client aborts
	}))
	t.Cleanup(blocking.Close)

	c, err := Dial(blocking.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := c.ExecuteContext(ctx, source.SubQuery{
			Language: source.LangSQL,
			Text:     "SELECT name FROM departements WHERE code = ?",
		}, []value.Value{value.NewString("75")})
		errCh <- err
	}()
	<-started
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled probe returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled probe did not abort the in-flight request")
	}
}

// TestEstimateRowsAndCostOverWire checks the /estimate protocol
// carries the richer (rows, cost) estimate end to end, with the
// client adding its round-trip overhead to the cost side only.
func TestEstimateRowsAndCostOverWire(t *testing.T) {
	srv, _ := servedRelSource(t)
	c, err := Dial(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	q := source.SubQuery{Language: source.LangSQL, Text: "SELECT name FROM departements WHERE code = ?"}
	_, db := servedRelSource(t)
	wantRows, wantCost := source.NewRelSource("sql://insee", db).Estimate(q, 1)
	rows, cost := c.Estimate(q, 1)
	if rows != wantRows {
		t.Errorf("remote rows estimate = %d, want the source's own %d", rows, wantRows)
	}
	if cost != wantCost+RemoteCostOverhead {
		t.Errorf("remote cost estimate = %d, want %d + overhead %d", cost, wantCost, RemoteCostOverhead)
	}
	if rows == cost {
		t.Errorf("rows (%d) and cost (%d) collapsed: the richer estimate was lost on the wire", rows, cost)
	}
	// EstimateCost (the legacy single int) stays the cardinality.
	if got := c.EstimateCost(q, 1); got != rows {
		t.Errorf("EstimateCost = %d, want rows %d", got, rows)
	}
}

// TestEstimateWithoutRowsFieldFallsBack: an endpoint predating the
// rows field (cost only) degrades to rows = cost, not rows = 0.
func TestEstimateWithoutRowsFieldFallsBack(t *testing.T) {
	legacy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/meta":
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write([]byte(`{"uri":"sql://legacy","model":"relational","languages":["sql"]}`))
		case "/estimate":
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write([]byte(`{"cost":7}`))
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(legacy.Close)
	c, err := Dial(legacy.URL)
	if err != nil {
		t.Fatal(err)
	}
	rows, cost := c.Estimate(source.SubQuery{Language: source.LangSQL, Text: "SELECT x FROM t"}, 0)
	if rows != 7 || cost != 7+RemoteCostOverhead {
		t.Errorf("legacy estimate = (%d, %d), want (7, %d)", rows, cost, 7+RemoteCostOverhead)
	}
}
