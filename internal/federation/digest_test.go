package federation

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"tatooine/internal/digest"
	"tatooine/internal/doc"
	"tatooine/internal/fulltext"
	"tatooine/internal/source"
	"tatooine/internal/value"
)

func servedDocSource(t *testing.T) *httptest.Server {
	t.Helper()
	ix := fulltext.NewIndex("tweets", fulltext.Schema{
		"text":              fulltext.TextField,
		"user.screen_name":  fulltext.KeywordField,
		"entities.hashtags": fulltext.KeywordField,
	})
	d := &doc.Document{ID: "t1"}
	d.Set("text", "solidarité #SIA2016")
	d.Set("user.screen_name", "fhollande")
	d.Set("entities.hashtags", []any{"SIA2016"})
	if err := ix.Add(d); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(source.NewDocSource("solr://tweets", ix)))
	t.Cleanup(srv.Close)
	return srv
}

func TestDigestEndpoint(t *testing.T) {
	srv := servedDocSource(t)
	resp, err := http.Get(srv.URL + "/digest")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status: %s", resp.Status)
	}
	var d digest.Digest
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	if d.Source != "solr://tweets" {
		t.Errorf("source: %s", d.Source)
	}
	hits := d.Lookup("SIA2016")
	if len(hits) == 0 {
		t.Error("remote digest lookup failed")
	}
}

func TestDigestEndpointCached(t *testing.T) {
	srv := servedDocSource(t)
	// Two requests must both succeed (the second from cache).
	for i := 0; i < 2; i++ {
		resp, err := http.Get(srv.URL + "/digest")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: %s", i, resp.Status)
		}
	}
}

func TestClientDigest(t *testing.T) {
	srv := servedDocSource(t)
	c, err := Dial(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	d, err := c.Digest(digest.DefaultBudget())
	if err != nil {
		t.Fatal(err)
	}
	n := d.Nodes["solr://tweets#user.screen_name"]
	if n == nil {
		t.Fatal("screen_name node missing in remote digest")
	}
	if !n.Values.MayContain("fhollande") {
		t.Error("remote value set lost membership")
	}
	if orig, ok := n.Values.Original("fhollande"); !ok || orig != "fhollande" {
		t.Errorf("original: %q %v", orig, ok)
	}
}

// undigestableSource is a DataSource with no digest support.
type undigestableSource struct{}

func (undigestableSource) URI() string                  { return "x://y" }
func (undigestableSource) Model() source.Model          { return source.RDFModel }
func (undigestableSource) Languages() []source.Language { return nil }
func (undigestableSource) Execute(source.SubQuery, []value.Value) (*source.Result, error) {
	return &source.Result{}, nil
}
func (undigestableSource) EstimateCost(source.SubQuery, int) int { return -1 }

func TestDigestEndpointUndigestable(t *testing.T) {
	srv := httptest.NewServer(Handler(undigestableSource{}))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/digest")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("undigestable source served a digest")
	}
}

func TestHandlerBadRequests(t *testing.T) {
	srv := servedDocSource(t)
	resp, err := http.Post(srv.URL+"/query", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty body status: %s", resp.Status)
	}
	// Unknown route.
	resp2, err := http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown route status: %s", resp2.Status)
	}
}
