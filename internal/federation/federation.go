// Package federation implements TATOOINE's HTTP federation layer: any
// DataSource can be served as an HTTP endpoint, and any such endpoint
// can be consumed as a DataSource by a remote mediator. This is the
// code path the paper exercises against SPARQL endpoints and
// dynamically discovered databases ("the address of a relational
// database is found in an INSEE table and part of the mixed query is
// shipped there for evaluation", §1).
package federation

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tatooine/internal/digest"
	"tatooine/internal/obs"
	"tatooine/internal/source"
	"tatooine/internal/value"
)

// remoteRTT observes every federation HTTP round trip, labeled by the
// remote's advertised URI — the wire-level view behind the planner's
// RemoteCostOverhead constant.
var remoteRTT = obs.Default.HistogramVec("tat_remote_rtt_seconds",
	"Federation HTTP round-trip latency by remote source URI.",
	"remote", obs.DurationBuckets())

// QueryRequest is the wire form of a sub-query execution request
// (POST /query).
type QueryRequest struct {
	Language string        `json:"language"`
	Text     string        `json:"text"`
	InVars   []string      `json:"inVars,omitempty"`
	Params   []value.Value `json:"params,omitempty"`
}

// QueryResponse is the wire form of a result (or error).
type QueryResponse struct {
	Cols  []string    `json:"cols,omitempty"`
	Rows  []value.Row `json:"rows,omitempty"`
	Error string      `json:"error,omitempty"`
}

// BatchRequest is the wire form of a batched sub-query execution
// (POST /batch): one sub-query, many parameter tuples, one round trip.
type BatchRequest struct {
	Language  string      `json:"language"`
	Text      string      `json:"text"`
	InVars    []string    `json:"inVars,omitempty"`
	ParamSets []value.Row `json:"paramSets"`
	// Prune optionally carries one Bloom filter per InVar position (nil
	// = no filter for that position), taken from the mediator's digest
	// of this endpoint: tuples a filter provably excludes answer an
	// empty result without touching the store. Filters have no false
	// negatives, so results are identical with or without the field —
	// endpoints predating it simply ignore the unknown key, and filters
	// from a different wire version decode as pass-through.
	Prune []*digest.Bloom `json:"prune,omitempty"`
}

// BatchResponse carries one result per parameter tuple, aligned with
// the request's ParamSets (or an error).
type BatchResponse struct {
	Results []QueryResponse `json:"results,omitempty"`
	Error   string          `json:"error,omitempty"`
}

// MetaResponse describes a served source (GET /meta).
type MetaResponse struct {
	URI       string   `json:"uri"`
	Model     string   `json:"model"`
	Languages []string `json:"languages"`
}

// EstimateRequest is the wire form of a cost estimation (POST /estimate).
type EstimateRequest struct {
	Language  string `json:"language"`
	Text      string `json:"text"`
	NumParams int    `json:"numParams"`
}

// EstimateResponse carries the estimated cost and, on endpoints that
// implement the richer source.Estimator protocol, the estimated result
// cardinality. Rows is a pointer so a pre-Estimator endpoint (which
// omits the field) is distinguishable from a remote that really
// estimates zero rows; clients fall back to rows = cost when absent.
type EstimateResponse struct {
	Cost  int    `json:"cost"`
	Rows  *int   `json:"rows,omitempty"`
	Error string `json:"error,omitempty"`
}

// Handler serves a DataSource over HTTP. Routes: GET /meta,
// POST /query, POST /batch, POST /estimate, GET /digest. Every route
// joins the caller's trace when the request carries X-Tat-* headers
// and reports its server-side time back, so a mediator's span tree
// attributes remote compute distinctly from wire RTT.
func Handler(src source.DataSource) http.Handler {
	return obs.Wrap("remote", handlerMux(src), nil)
}

func handlerMux(src source.DataSource) http.Handler {
	mux := http.NewServeMux()
	var (
		digestOnce sync.Once
		digestJSON []byte
		digestErr  error
	)
	mux.HandleFunc("GET /digest", func(w http.ResponseWriter, r *http.Request) {
		digestOnce.Do(func() {
			d, err := digest.ForSource(src, digest.DefaultBudget())
			if err != nil {
				digestErr = err
				return
			}
			if d == nil {
				digestErr = fmt.Errorf("source %s cannot be digested", src.URI())
				return
			}
			digestJSON, digestErr = json.Marshal(d)
		})
		if digestErr != nil {
			writeJSON(w, http.StatusUnprocessableEntity, map[string]string{"error": digestErr.Error()})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(digestJSON)
	})
	mux.HandleFunc("GET /meta", func(w http.ResponseWriter, r *http.Request) {
		langs := make([]string, 0, len(src.Languages()))
		for _, l := range src.Languages() {
			langs = append(langs, string(l))
		}
		writeJSON(w, http.StatusOK, MetaResponse{
			URI:       src.URI(),
			Model:     src.Model().String(),
			Languages: langs,
		})
	})
	mux.HandleFunc("POST /query", func(w http.ResponseWriter, r *http.Request) {
		var req QueryRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, 16<<20)).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, QueryResponse{Error: "bad request: " + err.Error()})
			return
		}
		res, err := src.Execute(source.SubQuery{
			Language: source.Language(req.Language),
			Text:     req.Text,
			InVars:   req.InVars,
		}, req.Params)
		if err != nil {
			writeJSON(w, http.StatusUnprocessableEntity, QueryResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, QueryResponse{Cols: res.Cols, Rows: res.Rows})
	})
	mux.HandleFunc("POST /batch", func(w http.ResponseWriter, r *http.Request) {
		var req BatchRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, 64<<20)).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, BatchResponse{Error: "bad request: " + err.Error()})
			return
		}
		q := source.SubQuery{
			Language: source.Language(req.Language),
			Text:     req.Text,
			InVars:   req.InVars,
		}
		// Digest semi-join pruning, server side: tuples the shipped
		// per-position Bloom filters provably exclude answer an empty
		// result (no cols, no rows) without reaching the store. keep maps
		// surviving tuples back to their request positions; nil means
		// nothing was pruned.
		params := req.ParamSets
		var keep []int
		if len(req.Prune) > 0 {
			survivors := make([]value.Row, 0, len(params))
			keep = make([]int, 0, len(params))
			for i, t := range params {
				if pruneTuple(req.Prune, t) {
					continue
				}
				keep = append(keep, i)
				survivors = append(survivors, t)
			}
			if len(keep) == len(params) {
				keep = nil
			} else {
				params = survivors
			}
		}
		// Native pushdown when the source batches; otherwise loop the
		// tuples server-side — the caller still saved N-1 network round
		// trips, which is the point of the endpoint.
		var results []*source.Result
		var err error
		switch {
		case len(params) == 0:
			// Every tuple pruned: nothing to execute.
		default:
			if bp, ok := src.(source.BatchProber); ok {
				results, err = bp.ExecuteBatch(q, params)
				if errors.Is(err, source.ErrBatchUnsupported) {
					results, err = source.ExecuteSerially(src, q, params)
				}
			} else {
				results, err = source.ExecuteSerially(src, q, params)
			}
		}
		if err != nil {
			writeJSON(w, http.StatusUnprocessableEntity, BatchResponse{Error: err.Error()})
			return
		}
		if len(results) != len(params) {
			writeJSON(w, http.StatusUnprocessableEntity, BatchResponse{Error: fmt.Sprintf(
				"federation: source returned %d results for %d tuples", len(results), len(params))})
			return
		}
		resp := BatchResponse{Results: make([]QueryResponse, len(req.ParamSets))}
		for j, res := range results {
			if res == nil {
				writeJSON(w, http.StatusUnprocessableEntity, BatchResponse{Error: fmt.Sprintf(
					"federation: source returned a nil result for tuple %d", j)})
				return
			}
			pos := j
			if keep != nil {
				pos = keep[j]
			}
			resp.Results[pos] = QueryResponse{Cols: res.Cols, Rows: res.Rows}
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /estimate", func(w http.ResponseWriter, r *http.Request) {
		var req EstimateRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, EstimateResponse{Cost: -1, Error: err.Error()})
			return
		}
		rows, cost := source.EstimateOf(src, source.SubQuery{
			Language: source.Language(req.Language),
			Text:     req.Text,
		}, req.NumParams)
		writeJSON(w, http.StatusOK, EstimateResponse{Cost: cost, Rows: &rows})
	})
	return mux
}

// pruneTuple reports whether a parameter tuple is provably excluded by
// the per-position Bloom filters of a batch request. Positions without
// a filter, values without a probe key (NULLs), and filters from a
// foreign wire version (which decode as pass-through) never prune.
func pruneTuple(filters []*digest.Bloom, t value.Row) bool {
	for pos, b := range filters {
		if b == nil || pos >= len(t) {
			continue
		}
		key, ok := digest.ProbeKey(t[pos])
		if !ok {
			continue
		}
		if !b.MayContainKey(key) {
			return true
		}
	}
	return false
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors after the header is written can only be logged by
	// the server; the stdlib http server handles broken pipes.
	_ = json.NewEncoder(w).Encode(body)
}

// Client is a DataSource backed by a remote federation endpoint.
type Client struct {
	baseURL string
	http    *http.Client
	meta    MetaResponse
	// noBatchUntil (unix nanos) backs the /batch route off after the
	// remote rejects it (404/405): until that instant batches fall back
	// immediately instead of paying a doomed round trip per chunk. The
	// backoff is bounded rather than permanent because the 404 may come
	// from an intermediary (a rolling deploy behind a proxy), not the
	// endpoint itself.
	noBatchUntil atomic.Int64
	// rttEWMA (nanos) smooths observed round-trip latencies; see
	// ObservedRTT. lastRTTWarn rate-limits the slow-remote warning.
	rttEWMA     atomic.Int64
	lastRTTWarn atomic.Int64
}

// ObservedRTT returns the smoothed round-trip latency of this remote
// (an exponentially weighted moving average over /query, /batch and
// /estimate calls), or zero before any call completed. It is the
// measured counterpart of the planner's modeled RemoteCostOverheadRTT.
func (c *Client) ObservedRTT() time.Duration {
	return time.Duration(c.rttEWMA.Load())
}

// observeRTT folds one round trip into the EWMA and the per-remote RTT
// histogram, and warns — at most once a minute per remote — when the
// observed latency exceeds 10× the modeled RemoteCostOverheadRTT: the
// planner is then charging this remote far too little, and its plans
// will over-prefer it.
func (c *Client) observeRTT(d time.Duration) {
	const alpha = 8 // EWMA smoothing: new = old + (obs-old)/alpha
	for {
		old := c.rttEWMA.Load()
		next := int64(d)
		if old != 0 {
			next = old + (int64(d)-old)/alpha
		}
		if c.rttEWMA.CompareAndSwap(old, next) {
			break
		}
	}
	remoteRTT.With(c.URI()).ObserveDuration(d)
	if d > 10*RemoteCostOverheadRTT {
		now := time.Now().UnixNano()
		last := c.lastRTTWarn.Load()
		if now-last > int64(time.Minute) && c.lastRTTWarn.CompareAndSwap(last, now) {
			slog.Warn("federation: remote RTT far above modeled overhead",
				slog.String("remote", c.URI()),
				slog.Duration("rtt", d),
				slog.Duration("modeled", RemoteCostOverheadRTT))
		}
	}
}

// batchRetryAfter is how long a Client avoids the /batch route after a
// 404/405 before re-probing it.
const batchRetryAfter = time.Minute

// Dial fetches the remote source's metadata and returns a client. The
// returned source's URI is the remote's advertised URI when available,
// else the base URL.
func Dial(baseURL string) (*Client, error) {
	c := &Client{
		baseURL: baseURL,
		http:    &http.Client{Timeout: 30 * time.Second},
	}
	resp, err := c.http.Get(baseURL + "/meta")
	if err != nil {
		return nil, fmt.Errorf("federation: dial %s: %w", baseURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, c.statusError("dial", resp)
	}
	// Bound the meta body like every other decode path: a misbehaving
	// endpoint must not be able to balloon mediator memory.
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&c.meta); err != nil {
		return nil, fmt.Errorf("federation: dial %s: bad meta: %w", baseURL, err)
	}
	if c.meta.URI == "" {
		c.meta.URI = baseURL
	}
	return c, nil
}

// URI implements source.DataSource.
func (c *Client) URI() string { return c.meta.URI }

// BaseURL returns the endpoint the client talks to.
func (c *Client) BaseURL() string { return c.baseURL }

// Model implements source.DataSource.
func (c *Client) Model() source.Model {
	switch c.meta.Model {
	case "relational":
		return source.RelationalModel
	case "document":
		return source.DocumentModel
	default:
		return source.RDFModel
	}
}

// Languages implements source.DataSource.
func (c *Client) Languages() []source.Language {
	out := make([]source.Language, 0, len(c.meta.Languages))
	for _, l := range c.meta.Languages {
		out = append(out, source.Language(l))
	}
	return out
}

// post ships a JSON body to a route under the endpoint's base URL,
// bound to ctx: cancelling the context aborts the in-flight HTTP
// request, which is how a cancelled query reaches remote probes. When
// ctx carries a span, its trace and span IDs propagate as X-Tat-*
// request headers so the remote joins the trace.
func (c *Client) post(ctx context.Context, route string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.baseURL+route, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if s := obs.SpanFromContext(ctx); s != nil {
		req.Header.Set(obs.TraceHeader, s.TraceID())
		req.Header.Set(obs.SpanHeader, s.ID())
	}
	return c.http.Do(req)
}

// roundTrip is post under a call span with RTT accounting: the call
// gets a "remote <route>" child span carrying the remote's URI, and —
// when the endpoint joined the trace — the remote's root span ID plus
// the server-side/wire split of the observed latency (the remote
// reports its own elapsed time via ServerTimeHeader; the difference is
// time on the wire).
func (c *Client) roundTrip(ctx context.Context, route string, body []byte) (*http.Response, error) {
	ctx, sp := obs.StartSpan(ctx, "remote "+route)
	sp.SetAttr("remote", c.URI())
	start := time.Now()
	resp, err := c.post(ctx, route, body)
	rtt := time.Since(start)
	if err != nil {
		sp.End()
		return nil, err
	}
	c.observeRTT(rtt)
	if rid := resp.Header.Get(obs.SpanHeader); rid != "" {
		sp.SetAttr("remoteSpan", rid)
	}
	if ns := resp.Header.Get(obs.ServerTimeHeader); ns != "" {
		if n, perr := strconv.ParseInt(ns, 10, 64); perr == nil && n >= 0 {
			sp.SetAttr("serverNs", ns)
			if wire := int64(rtt) - n; wire > 0 {
				sp.SetAttr("wireNs", strconv.FormatInt(wire, 10))
			}
		}
	}
	sp.End()
	return resp, nil
}

// Execute implements source.DataSource by shipping the sub-query to the
// remote endpoint.
func (c *Client) Execute(q source.SubQuery, params []value.Value) (*source.Result, error) {
	return c.ExecuteContext(context.Background(), q, params)
}

// ExecuteContext implements source.ContextExecutor: the probe's HTTP
// request is bound to ctx, so a cancelled or expired query aborts the
// round trip instead of leaking it.
func (c *Client) ExecuteContext(ctx context.Context, q source.SubQuery, params []value.Value) (*source.Result, error) {
	req := QueryRequest{
		Language: string(q.Language),
		Text:     q.Text,
		InVars:   q.InVars,
		Params:   params,
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("federation: marshal: %w", err)
	}
	resp, err := c.roundTrip(ctx, "/query", body)
	if err != nil {
		return nil, fmt.Errorf("federation: query %s: %w", c.baseURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, c.statusError("query", resp)
	}
	var qr QueryResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&qr); err != nil {
		return nil, fmt.Errorf("federation: query %s: bad response: %w", c.baseURL, err)
	}
	if qr.Error != "" {
		return nil, fmt.Errorf("federation: remote %s: %s", c.baseURL, qr.Error)
	}
	return &source.Result{Cols: qr.Cols, Rows: qr.Rows}, nil
}

// ExecuteBatch implements source.BatchProber by shipping the whole
// batch as ONE request to the remote /batch endpoint — this is where
// bind-join batching pays for remote sources: ⌈N/batch⌉ HTTP round
// trips instead of N, with the remote side pushing the batch natively
// into its store when it can. A remote that predates the batch route
// (404/405) reports source.ErrBatchUnsupported so the mediator falls
// back to per-tuple probes; the route is then avoided for
// batchRetryAfter before being re-probed.
func (c *Client) ExecuteBatch(q source.SubQuery, paramSets []value.Row) ([]*source.Result, error) {
	return c.ExecuteBatchContext(context.Background(), q, paramSets)
}

// ExecuteBatchContext implements source.ContextBatchProber; see
// ExecuteBatch and ExecuteContext.
func (c *Client) ExecuteBatchContext(ctx context.Context, q source.SubQuery, paramSets []value.Row) ([]*source.Result, error) {
	if time.Now().UnixNano() < c.noBatchUntil.Load() {
		return nil, source.ErrBatchUnsupported
	}
	req := BatchRequest{
		Language:  string(q.Language),
		Text:      q.Text,
		InVars:    q.InVars,
		ParamSets: paramSets,
		Prune:     pruneFilters(q.Prune),
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("federation: marshal batch: %w", err)
	}
	resp, err := c.roundTrip(ctx, "/batch", body)
	if err != nil {
		return nil, fmt.Errorf("federation: batch %s: %w", c.baseURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound || resp.StatusCode == http.StatusMethodNotAllowed {
		// Endpoint without the batch route; back off so later batches
		// skip the wasted round trip for a while.
		c.noBatchUntil.Store(time.Now().Add(batchRetryAfter).UnixNano())
		return nil, source.ErrBatchUnsupported
	}
	if resp.StatusCode != http.StatusOK {
		return nil, c.statusError("batch", resp)
	}
	var br BatchResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&br); err != nil {
		return nil, fmt.Errorf("federation: batch %s: bad response: %w", c.baseURL, err)
	}
	if br.Error != "" {
		return nil, fmt.Errorf("federation: remote %s: %s", c.baseURL, br.Error)
	}
	if len(br.Results) != len(paramSets) {
		return nil, fmt.Errorf("federation: batch %s: %d results for %d tuples", c.baseURL, len(br.Results), len(paramSets))
	}
	out := make([]*source.Result, len(br.Results))
	for i, qr := range br.Results {
		if qr.Error != "" {
			return nil, fmt.Errorf("federation: remote %s: tuple %d: %s", c.baseURL, i, qr.Error)
		}
		out[i] = &source.Result{Cols: qr.Cols, Rows: qr.Rows}
	}
	return out, nil
}

// pruneFilters projects a sub-query's per-position probe filters onto
// the wire: only digest Bloom filters serialize (other ProbeFilter
// implementations stay mediator-local), and an all-nil set is dropped
// entirely so unfiltered batches carry no extra bytes.
func pruneFilters(filters []source.ProbeFilter) []*digest.Bloom {
	any := false
	for _, f := range filters {
		if b, ok := f.(*digest.Bloom); ok && b != nil {
			any = true
			break
		}
	}
	if !any {
		return nil
	}
	out := make([]*digest.Bloom, len(filters))
	for i, f := range filters {
		if b, ok := f.(*digest.Bloom); ok {
			out[i] = b
		}
	}
	return out
}

// statusError turns a non-OK response into an error. The status is
// checked before decoding: a non-JSON error body (a proxy 502, a wrong
// route) must surface as the HTTP status, not as a confusing decode
// failure; when the endpoint did send a JSON error, its message is
// included alongside the status.
func (c *Client) statusError(op string, resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 8<<10))
	var envelope struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &envelope) == nil && envelope.Error != "" {
		return fmt.Errorf("federation: %s %s: status %s: %s", op, c.baseURL, resp.Status, envelope.Error)
	}
	return fmt.Errorf("federation: %s %s: status %s", op, c.baseURL, resp.Status)
}

// RemoteCostOverhead is the flat cost a Client adds to the remote's
// self-reported estimate: shipping a sub-query pays an HTTP round trip
// the remote does not account for, so with otherwise-equal estimates
// the planner should prefer the local source.
const RemoteCostOverhead = 32

// RemoteCostOverheadRTT is the wall-clock round trip RemoteCostOverhead
// models — the duration the planner implicitly assumes when it charges
// a remote those 32 cost units. Client.ObservedRTT measures the real
// value per remote; when the observed RTT exceeds 10× this constant the
// client logs a warning, because the planner is then under-charging the
// remote and its plans will over-prefer it. The constant itself stays
// fixed so plan ordering remains deterministic across runs.
const RemoteCostOverheadRTT = 10 * time.Millisecond

// EstimateCost implements source.DataSource through Estimate.
func (c *Client) EstimateCost(q source.SubQuery, numParams int) int {
	rows, _ := c.Estimate(q, numParams)
	return rows
}

// Estimate implements source.Estimator by asking the remote endpoint;
// network and remote failures degrade to unknown (-1, -1). The status
// and error envelope are checked before the payload is trusted: a
// 404/502 JSON error body would otherwise decode to Cost: 0 and make a
// broken remote look like the cheapest source in the plan. Endpoints
// predating the rows field report rows = cost; either way the cost
// carries RemoteCostOverhead on top.
func (c *Client) Estimate(q source.SubQuery, numParams int) (rows, cost int) {
	body, err := json.Marshal(EstimateRequest{
		Language:  string(q.Language),
		Text:      q.Text,
		NumParams: numParams,
	})
	if err != nil {
		return -1, -1
	}
	start := time.Now()
	resp, err := c.http.Post(c.baseURL+"/estimate", "application/json", bytes.NewReader(body))
	if err != nil {
		return -1, -1
	}
	c.observeRTT(time.Since(start))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return -1, -1
	}
	var er EstimateResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&er); err != nil {
		return -1, -1
	}
	if er.Error != "" {
		return -1, -1
	}
	rows, cost = er.Cost, er.Cost
	if er.Rows != nil {
		rows = *er.Rows
	}
	if rows < 0 || cost < 0 {
		return -1, -1
	}
	return rows, cost + RemoteCostOverhead
}

// Digest implements digest.Digester: it fetches the remote endpoint's
// digest so remote sources participate in keyword search. The remote
// computes under its own default budget; the budget argument is
// accepted for interface compatibility.
func (c *Client) Digest(_ digest.Budget) (*digest.Digest, error) {
	resp, err := c.http.Get(c.baseURL + "/digest")
	if err != nil {
		return nil, fmt.Errorf("federation: digest %s: %w", c.baseURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// statusError reads the error body through a bounded reader, so a
		// misbehaving endpoint cannot balloon memory here either.
		return nil, c.statusError("digest", resp)
	}
	var d digest.Digest
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&d); err != nil {
		return nil, fmt.Errorf("federation: digest %s: %w", c.baseURL, err)
	}
	return &d, nil
}

// Resolver returns a source.Resolver that dials remote endpoints,
// suitable for Registry.SetFallback: it enables dynamic source
// discovery of URIs found in query results.
func Resolver() source.Resolver {
	return func(uri string) (source.DataSource, error) {
		return Dial(uri)
	}
}
