// Package federation implements TATOOINE's HTTP federation layer: any
// DataSource can be served as an HTTP endpoint, and any such endpoint
// can be consumed as a DataSource by a remote mediator. This is the
// code path the paper exercises against SPARQL endpoints and
// dynamically discovered databases ("the address of a relational
// database is found in an INSEE table and part of the mixed query is
// shipped there for evaluation", §1).
package federation

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"tatooine/internal/digest"
	"tatooine/internal/source"
	"tatooine/internal/value"
)

// QueryRequest is the wire form of a sub-query execution request
// (POST /query).
type QueryRequest struct {
	Language string        `json:"language"`
	Text     string        `json:"text"`
	InVars   []string      `json:"inVars,omitempty"`
	Params   []value.Value `json:"params,omitempty"`
}

// QueryResponse is the wire form of a result (or error).
type QueryResponse struct {
	Cols  []string    `json:"cols,omitempty"`
	Rows  []value.Row `json:"rows,omitempty"`
	Error string      `json:"error,omitempty"`
}

// MetaResponse describes a served source (GET /meta).
type MetaResponse struct {
	URI       string   `json:"uri"`
	Model     string   `json:"model"`
	Languages []string `json:"languages"`
}

// EstimateRequest is the wire form of a cost estimation (POST /estimate).
type EstimateRequest struct {
	Language  string `json:"language"`
	Text      string `json:"text"`
	NumParams int    `json:"numParams"`
}

// EstimateResponse carries the estimated cardinality.
type EstimateResponse struct {
	Cost  int    `json:"cost"`
	Error string `json:"error,omitempty"`
}

// Handler serves a DataSource over HTTP. Routes: GET /meta,
// POST /query, POST /estimate, GET /digest.
func Handler(src source.DataSource) http.Handler {
	mux := http.NewServeMux()
	var (
		digestOnce sync.Once
		digestJSON []byte
		digestErr  error
	)
	mux.HandleFunc("GET /digest", func(w http.ResponseWriter, r *http.Request) {
		digestOnce.Do(func() {
			d, err := digest.ForSource(src, digest.DefaultBudget())
			if err != nil {
				digestErr = err
				return
			}
			if d == nil {
				digestErr = fmt.Errorf("source %s cannot be digested", src.URI())
				return
			}
			digestJSON, digestErr = json.Marshal(d)
		})
		if digestErr != nil {
			writeJSON(w, http.StatusUnprocessableEntity, map[string]string{"error": digestErr.Error()})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(digestJSON)
	})
	mux.HandleFunc("GET /meta", func(w http.ResponseWriter, r *http.Request) {
		langs := make([]string, 0, len(src.Languages()))
		for _, l := range src.Languages() {
			langs = append(langs, string(l))
		}
		writeJSON(w, http.StatusOK, MetaResponse{
			URI:       src.URI(),
			Model:     src.Model().String(),
			Languages: langs,
		})
	})
	mux.HandleFunc("POST /query", func(w http.ResponseWriter, r *http.Request) {
		var req QueryRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, 16<<20)).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, QueryResponse{Error: "bad request: " + err.Error()})
			return
		}
		res, err := src.Execute(source.SubQuery{
			Language: source.Language(req.Language),
			Text:     req.Text,
			InVars:   req.InVars,
		}, req.Params)
		if err != nil {
			writeJSON(w, http.StatusUnprocessableEntity, QueryResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, QueryResponse{Cols: res.Cols, Rows: res.Rows})
	})
	mux.HandleFunc("POST /estimate", func(w http.ResponseWriter, r *http.Request) {
		var req EstimateRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, EstimateResponse{Cost: -1, Error: err.Error()})
			return
		}
		cost := src.EstimateCost(source.SubQuery{
			Language: source.Language(req.Language),
			Text:     req.Text,
		}, req.NumParams)
		writeJSON(w, http.StatusOK, EstimateResponse{Cost: cost})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors after the header is written can only be logged by
	// the server; the stdlib http server handles broken pipes.
	_ = json.NewEncoder(w).Encode(body)
}

// Client is a DataSource backed by a remote federation endpoint.
type Client struct {
	baseURL string
	http    *http.Client
	meta    MetaResponse
}

// Dial fetches the remote source's metadata and returns a client. The
// returned source's URI is the remote's advertised URI when available,
// else the base URL.
func Dial(baseURL string) (*Client, error) {
	c := &Client{
		baseURL: baseURL,
		http:    &http.Client{Timeout: 30 * time.Second},
	}
	resp, err := c.http.Get(baseURL + "/meta")
	if err != nil {
		return nil, fmt.Errorf("federation: dial %s: %w", baseURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("federation: dial %s: status %s", baseURL, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&c.meta); err != nil {
		return nil, fmt.Errorf("federation: dial %s: bad meta: %w", baseURL, err)
	}
	if c.meta.URI == "" {
		c.meta.URI = baseURL
	}
	return c, nil
}

// URI implements source.DataSource.
func (c *Client) URI() string { return c.meta.URI }

// BaseURL returns the endpoint the client talks to.
func (c *Client) BaseURL() string { return c.baseURL }

// Model implements source.DataSource.
func (c *Client) Model() source.Model {
	switch c.meta.Model {
	case "relational":
		return source.RelationalModel
	case "document":
		return source.DocumentModel
	default:
		return source.RDFModel
	}
}

// Languages implements source.DataSource.
func (c *Client) Languages() []source.Language {
	out := make([]source.Language, 0, len(c.meta.Languages))
	for _, l := range c.meta.Languages {
		out = append(out, source.Language(l))
	}
	return out
}

// Execute implements source.DataSource by shipping the sub-query to the
// remote endpoint.
func (c *Client) Execute(q source.SubQuery, params []value.Value) (*source.Result, error) {
	req := QueryRequest{
		Language: string(q.Language),
		Text:     q.Text,
		InVars:   q.InVars,
		Params:   params,
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("federation: marshal: %w", err)
	}
	resp, err := c.http.Post(c.baseURL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("federation: query %s: %w", c.baseURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Check the status before decoding: a non-JSON error body (a
		// proxy 502, a wrong route) must surface as the HTTP status, not
		// as a confusing decode failure. When the endpoint did send a
		// JSON error, include its message alongside the status.
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 8<<10))
		var qr QueryResponse
		if json.Unmarshal(body, &qr) == nil && qr.Error != "" {
			return nil, fmt.Errorf("federation: query %s: status %s: %s", c.baseURL, resp.Status, qr.Error)
		}
		return nil, fmt.Errorf("federation: query %s: status %s", c.baseURL, resp.Status)
	}
	var qr QueryResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&qr); err != nil {
		return nil, fmt.Errorf("federation: query %s: bad response: %w", c.baseURL, err)
	}
	if qr.Error != "" {
		return nil, fmt.Errorf("federation: remote %s: %s", c.baseURL, qr.Error)
	}
	return &source.Result{Cols: qr.Cols, Rows: qr.Rows}, nil
}

// EstimateCost implements source.DataSource by asking the remote
// endpoint; network failures degrade to unknown (-1).
func (c *Client) EstimateCost(q source.SubQuery, numParams int) int {
	body, err := json.Marshal(EstimateRequest{
		Language:  string(q.Language),
		Text:      q.Text,
		NumParams: numParams,
	})
	if err != nil {
		return -1
	}
	resp, err := c.http.Post(c.baseURL+"/estimate", "application/json", bytes.NewReader(body))
	if err != nil {
		return -1
	}
	defer resp.Body.Close()
	var er EstimateResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		return -1
	}
	return er.Cost
}

// Digest implements digest.Digester: it fetches the remote endpoint's
// digest so remote sources participate in keyword search. The remote
// computes under its own default budget; the budget argument is
// accepted for interface compatibility.
func (c *Client) Digest(_ digest.Budget) (*digest.Digest, error) {
	resp, err := c.http.Get(c.baseURL + "/digest")
	if err != nil {
		return nil, fmt.Errorf("federation: digest %s: %w", c.baseURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("federation: digest %s: status %s", c.baseURL, resp.Status)
	}
	var d digest.Digest
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&d); err != nil {
		return nil, fmt.Errorf("federation: digest %s: %w", c.baseURL, err)
	}
	return &d, nil
}

// Resolver returns a source.Resolver that dials remote endpoints,
// suitable for Registry.SetFallback: it enables dynamic source
// discovery of URIs found in query results.
func Resolver() source.Resolver {
	return func(uri string) (source.DataSource, error) {
		return Dial(uri)
	}
}
