package federation

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"

	"tatooine/internal/digest"
	"tatooine/internal/source"
	"tatooine/internal/value"
)

// countingBatchSource forwards to an inner batch-capable source and
// records how many parameter tuples actually reach it, so tests can
// measure what server-side pruning saved.
type countingBatchSource struct {
	source.DataSource
	mu     sync.Mutex
	tuples int
}

func (s *countingBatchSource) ExecuteBatch(q source.SubQuery, paramSets []value.Row) ([]*source.Result, error) {
	s.mu.Lock()
	s.tuples += len(paramSets)
	s.mu.Unlock()
	return s.DataSource.(source.BatchProber).ExecuteBatch(q, paramSets)
}

func (s *countingBatchSource) probed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tuples
}

// TestBatchEndpointPrunesWithBloom ships a bind-join batch whose
// request carries a bloom filter over the parameter position: the
// endpoint must answer excluded tuples as empty results without
// executing them, and keep the surviving results position-aligned.
func TestBatchEndpointPrunesWithBloom(t *testing.T) {
	_, db := servedRelSource(t)
	inner := &countingBatchSource{DataSource: source.NewRelSource("sql://insee", db)}
	srv := httptest.NewServer(Handler(inner))
	t.Cleanup(srv.Close)
	c, err := Dial(srv.URL)
	if err != nil {
		t.Fatal(err)
	}

	b := digest.NewBloom(8, 0.01)
	b.Add(digest.Normalize("75"))
	b.Add(digest.Normalize("92"))
	q := batchQuery
	q.Prune = []source.ProbeFilter{b}

	sets := codes("75", "00", "92", "nope")
	results, err := c.ExecuteBatch(q, sets)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(sets) {
		t.Fatalf("results: %d, want %d (position alignment)", len(results), len(sets))
	}
	if inner.probed() != 2 {
		t.Fatalf("source probed %d tuples, want 2 (bloom excludes '00' and 'nope')", inner.probed())
	}
	if results[0].Len() != 1 || results[0].Rows[0][0].Str() != "Paris" {
		t.Errorf("surviving tuple 0 misaligned: %+v", results[0])
	}
	if results[2].Len() != 1 || results[2].Rows[0][0].Str() != "Hauts-de-Seine" {
		t.Errorf("surviving tuple 2 misaligned: %+v", results[2])
	}
	for _, i := range []int{1, 3} {
		if results[i].Len() != 0 {
			t.Errorf("pruned tuple %d returned rows: %+v", i, results[i])
		}
	}
}

// TestBatchEndpointAllPruned covers the degenerate batch: every tuple
// excluded, nothing executes, every answer is empty.
func TestBatchEndpointAllPruned(t *testing.T) {
	_, db := servedRelSource(t)
	inner := &countingBatchSource{DataSource: source.NewRelSource("sql://insee", db)}
	srv := httptest.NewServer(Handler(inner))
	t.Cleanup(srv.Close)
	c, err := Dial(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	b := digest.NewBloom(8, 0.01)
	b.Add(digest.Normalize("75"))
	q := batchQuery
	q.Prune = []source.ProbeFilter{b}
	results, err := c.ExecuteBatch(q, codes("00", "nope"))
	if err != nil {
		t.Fatal(err)
	}
	if inner.probed() != 0 {
		t.Fatalf("source probed %d tuples, want 0", inner.probed())
	}
	if len(results) != 2 || results[0].Len() != 0 || results[1].Len() != 0 {
		t.Fatalf("all-pruned results: %+v", results)
	}
}

// TestBatchEndpointForeignVersionBloomIsPassThrough pins the
// cross-version safety property: a bloom from a different wire version
// decodes as a filter that never excludes, so a mixed-version
// federation degrades to no pruning instead of losing rows.
func TestBatchEndpointForeignVersionBloomIsPassThrough(t *testing.T) {
	_, db := servedRelSource(t)
	inner := &countingBatchSource{DataSource: source.NewRelSource("sql://insee", db)}
	srv := httptest.NewServer(Handler(inner))
	t.Cleanup(srv.Close)
	c, err := Dial(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	// A hypothetical future encoding this version cannot interpret.
	var foreign digest.Bloom
	if err := json.Unmarshal([]byte(`{"v":999,"m":64,"k":9,"added":2,"bits":"opaque-future-format"}`), &foreign); err != nil {
		t.Fatalf("foreign bloom must decode as pass-through, got %v", err)
	}
	q := batchQuery
	q.Prune = []source.ProbeFilter{&foreign}
	sets := codes("75", "00")
	results, err := c.ExecuteBatch(q, sets)
	if err != nil {
		t.Fatal(err)
	}
	if inner.probed() != len(sets) {
		t.Fatalf("foreign-version bloom pruned: %d tuples probed, want %d", inner.probed(), len(sets))
	}
	if results[0].Len() != 1 {
		t.Errorf("matching tuple lost under pass-through bloom: %+v", results[0])
	}
}

// TestBatchEndpointNilFilterSkipsPosition checks a nil entry in the
// prune list means "no statistics for this position" — nothing is
// excluded by it.
func TestBatchEndpointNilFilterSkipsPosition(t *testing.T) {
	_, db := servedRelSource(t)
	inner := &countingBatchSource{DataSource: source.NewRelSource("sql://insee", db)}
	srv := httptest.NewServer(Handler(inner))
	t.Cleanup(srv.Close)
	c, err := Dial(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	q := batchQuery
	q.Prune = []source.ProbeFilter{nil}
	results, err := c.ExecuteBatch(q, codes("75", "00"))
	if err != nil {
		t.Fatal(err)
	}
	if inner.probed() != 2 {
		t.Fatalf("nil filter pruned: %d tuples probed, want 2", inner.probed())
	}
	if len(results) != 2 {
		t.Fatalf("results: %d", len(results))
	}
}
