package datagen

import (
	"fmt"
	"math/rand"

	"tatooine/internal/relstore"
)

// GenINSEE builds the INSEE-like curated relational database of the
// mixed instance: departments, unemployment statistics, election
// results per department and party, the agriculture production table
// the paper cites, and an endpoints table whose URIs support dynamic
// source discovery.
func GenINSEE(rng *rand.Rand, cfg Config, endpointURIs []string) (*relstore.Database, error) {
	db := relstore.NewDatabase("insee")
	stmts := []string{
		`CREATE TABLE departements (code TEXT PRIMARY KEY, name TEXT, population INT)`,
		`CREATE TABLE chomage (dept TEXT, annee INT, taux FLOAT,
			FOREIGN KEY (dept) REFERENCES departements(code))`,
		`CREATE TABLE resultats (dept TEXT, annee INT, parti TEXT, voix INT,
			FOREIGN KEY (dept) REFERENCES departements(code))`,
		`CREATE TABLE agriculture (annee INT, filiere TEXT, production FLOAT, valeur FLOAT)`,
		`CREATE TABLE endpoints (region TEXT, uri TEXT)`,
	}
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			return nil, err
		}
	}
	exec := func(q string) error {
		_, err := db.Exec(q)
		return err
	}
	for _, d := range Departments {
		pop := 300000 + rng.Intn(2_000_000)
		if err := exec(fmt.Sprintf(`INSERT INTO departements VALUES ('%s', '%s', %d)`,
			d[0], escapeSQL(d[1]), pop)); err != nil {
			return nil, err
		}
		for _, year := range []int{2014, 2015, 2016} {
			taux := 6 + rng.Float64()*6
			if err := exec(fmt.Sprintf(`INSERT INTO chomage VALUES ('%s', %d, %.2f)`,
				d[0], year, taux)); err != nil {
				return nil, err
			}
			for _, p := range Parties {
				voix := 10000 + rng.Intn(500000)
				if err := exec(fmt.Sprintf(`INSERT INTO resultats VALUES ('%s', %d, '%s', %d)`,
					d[0], year, p.ID, voix)); err != nil {
					return nil, err
				}
			}
		}
	}
	for _, f := range []string{"céréales", "élevage", "viticulture", "maraîchage", "lait"} {
		for _, year := range []int{2014, 2015} {
			if err := exec(fmt.Sprintf(`INSERT INTO agriculture VALUES (%d, '%s', %.1f, %.1f)`,
				year, escapeSQL(f), 100+rng.Float64()*900, 50+rng.Float64()*500)); err != nil {
				return nil, err
			}
		}
	}
	for i, uri := range endpointURIs {
		if err := exec(fmt.Sprintf(`INSERT INTO endpoints VALUES ('region%d', '%s')`,
			i+1, escapeSQL(uri))); err != nil {
			return nil, err
		}
	}
	return db, nil
}

func escapeSQL(s string) string {
	out := ""
	for _, r := range s {
		if r == '\'' {
			out += "''"
			continue
		}
		out += string(r)
	}
	return out
}

// GenRegionalDB builds one small regional statistics database, used as
// a dynamically-discovered source.
func GenRegionalDB(rng *rand.Rand, name string) (*relstore.Database, error) {
	db := relstore.NewDatabase(name)
	if _, err := db.Exec(`CREATE TABLE stats (indicator TEXT, val INT)`); err != nil {
		return nil, err
	}
	for _, ind := range []string{"population", "communes", "entreprises"} {
		if _, err := db.Exec(fmt.Sprintf(`INSERT INTO stats VALUES ('%s', %d)`,
			ind, 100+rng.Intn(100000))); err != nil {
			return nil, err
		}
	}
	return db, nil
}
