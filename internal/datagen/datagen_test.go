package datagen

import (
	"testing"

	"tatooine/internal/analytics"
	"tatooine/internal/doc"
	"tatooine/internal/fulltext"
	"tatooine/internal/rdf"
	"tatooine/internal/value"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.NumPoliticians = 60
	cfg.NumTweets = 1500
	cfg.NumFacebookPosts = 100
	return cfg
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.Size() != b.Graph.Size() {
		t.Errorf("graph sizes differ: %d vs %d", a.Graph.Size(), b.Graph.Size())
	}
	if a.Tweets.Count() != b.Tweets.Count() {
		t.Errorf("tweet counts differ")
	}
	// Spot-check one politician is identical.
	if a.Politicians[10] != b.Politicians[10] {
		t.Errorf("politician 10 differs: %+v vs %+v", a.Politicians[10], b.Politicians[10])
	}
	// Different seeds must differ.
	cfg := smallConfig()
	cfg.Seed = 7
	c, _ := Generate(cfg)
	if c.Politicians[10] == a.Politicians[10] {
		t.Error("different seeds produced identical politicians")
	}
}

func TestHeadOfStateInvariants(t *testing.T) {
	ds, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	hos := ds.Politicians[0]
	if hos.Position != "headOfState" {
		t.Fatalf("first politician must be head of state: %+v", hos)
	}
	// The graph holds the paper's running-example triples.
	subj := rdf.NewIRI(NSPol + hos.ID)
	if !ds.Graph.Contains(rdf.Triple{S: subj, P: rdf.NewIRI(NS + "position"), O: rdf.NewIRI(NS + "headOfState")}) {
		t.Error("position triple missing")
	}
	if !ds.Graph.Contains(rdf.Triple{S: subj, P: rdf.NewIRI(NS + "twitterAccount"), O: rdf.NewLiteral(hos.Twitter)}) {
		t.Error("twitterAccount triple missing")
	}
	// The head of state tweets about the agriculture fair (#SIA2016).
	hits, err := ds.Tweets.Search(fulltext.BoolQuery{
		Must: []fulltext.Query{
			fulltext.KeywordQuery{Field: "user.screen_name", Value: hos.Twitter},
			fulltext.KeywordQuery{Field: "entities.hashtags", Value: "SIA2016"},
		},
	}, fulltext.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Error("head of state has no #SIA2016 tweets — qSIA would be empty")
	}
}

func TestTweetFieldsShapeFigure2(t *testing.T) {
	ds, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	d := ds.Tweets.Get("tw00000001")
	if d == nil {
		t.Fatal("first tweet missing")
	}
	for _, path := range []string{"text", "user.screen_name", "user.name", "created_at", "retweet_count", "favorite_count"} {
		if vals := d.Values(path); len(vals) == 0 {
			t.Errorf("tweet missing %s", path)
		}
	}
}

func TestJoinableAccounts(t *testing.T) {
	// Every tweet author must resolve through the graph (repeated
	// values across sources, §1).
	ds, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	twitterSet := make(map[string]bool)
	for _, p := range ds.Politicians {
		twitterSet[p.Twitter] = true
	}
	bad := 0
	ds.Tweets.Each(func(d *doc.Document) bool {
		author := d.Values("user.screen_name")[0].Str()
		if !twitterSet[author] {
			bad++
		}
		return true
	})
	if bad > 0 {
		t.Errorf("%d tweets have unjoinable authors", bad)
	}
}

func TestINSEETables(t *testing.T) {
	ds, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := ds.INSEE.Exec("SELECT COUNT(*) FROM departements")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != int64(len(Departments)) {
		t.Errorf("departements rows: %v", res.Rows[0][0])
	}
	res, err = ds.INSEE.Exec("SELECT COUNT(*) FROM agriculture")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 10 {
		t.Errorf("agriculture rows: %v", res.Rows[0][0])
	}
	res, err = ds.INSEE.Exec("SELECT uri FROM endpoints ORDER BY uri")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(RegionalURIs) {
		t.Errorf("endpoints: %+v", res.Rows)
	}
}

func TestInstanceAssemblyAndQSIA(t *testing.T) {
	ds, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	in, err := ds.Instance()
	if err != nil {
		t.Fatal(err)
	}
	res, err := in.Query(`
QUERY qSIA(?t, ?id)
GRAPH { ?x :position :headOfState . ?x :twitterAccount ?id }
FROM <solr://tweets> IN(?id) OUT(?t, ?id)
  { SEARCH tweets WHERE user.screen_name = ? AND entities.hashtags = 'SIA2016' RETURN _id, user.screen_name }
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Error("qSIA empty on generated instance")
	}
	for _, row := range res.Rows {
		if row[1].Str() != ds.Politicians[0].Twitter {
			t.Errorf("qSIA returned non-head-of-state author: %v", row)
		}
	}
}

func TestPMISignalRecoverable(t *testing.T) {
	// The planted week-3 ecologist objection vocabulary must surface in
	// the PMI rankings (Figure 3's phenomenon).
	ds, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	tc := analytics.ComputeTagClouds(ds.Tweets, "text", ds.Classifier(), 10, 3)
	if len(tc.Weeks) == 0 {
		t.Fatal("no weeks")
	}
	var week3 *analytics.WeekClouds
	for i := range tc.Weeks {
		if tc.Weeks[i].Week == 3 {
			week3 = &tc.Weeks[i]
		}
	}
	if week3 == nil {
		t.Fatal("week 3 missing")
	}
	eelv := week3.Parties["EELV"]
	if len(eelv) == 0 {
		t.Fatal("no EELV terms in week 3")
	}
	// The objection vocabulary (abus/excès/risque/libertés → stemmed)
	// must appear in EELV's week-3 top 10. Party-signature terms
	// (climat, nucléaire) legitimately outrank it — they are exclusive
	// to the party — but the objection terms must be present and must
	// score higher for EELV than for PS (the Figure 3 phenomenon).
	objection := map[string]bool{"abu": true, "exc": true, "risqu": true, "perquisi": true, "deriv": true, "libert": true}
	scoreOf := func(terms []analytics.TermScore, w string) float64 {
		for _, ts := range terms {
			if ts.Term == w {
				return ts.Score
			}
		}
		return 0
	}
	found := ""
	for _, ts := range eelv {
		if objection[ts.Term] {
			found = ts.Term
			break
		}
	}
	if found == "" {
		t.Fatalf("week-3 EELV top terms lack objection vocabulary: %+v", eelv)
	}
	ps := week3.Parties["PS"]
	if scoreOf(eelv, found) <= scoreOf(ps, found) {
		t.Errorf("objection term %q not amplified for EELV: eelv=%f ps=%f",
			found, scoreOf(eelv, found), scoreOf(ps, found))
	}
}

func TestPartyOfLookup(t *testing.T) {
	ds, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, ok := ds.PartyOf(ds.Politicians[0].Twitter)
	if !ok || p.ID != "PS" {
		t.Errorf("PartyOf head of state: %+v %v", p, ok)
	}
	if _, ok := ds.PartyOf("nobody"); ok {
		t.Error("unknown account resolved")
	}
	cur := CurrentOfParty()
	if cur["EELV"] != "ecologist" {
		t.Errorf("currents: %v", cur)
	}
}

func TestRetweetCountsPresent(t *testing.T) {
	ds, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	hits, err := ds.Tweets.Search(fulltext.RangeQuery{
		Field: "retweet_count", Min: value.NewInt(0), Max: value.NewNull(),
	}, fulltext.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != ds.Tweets.Count() {
		t.Errorf("retweet_count indexed on %d/%d tweets", len(hits), ds.Tweets.Count())
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
