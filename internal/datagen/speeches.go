package datagen

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"tatooine/internal/xmlstore"
)

// GenSpeeches builds the structured-text source of the mixed instance:
// an XML store of public speeches (the "laws and regulations, public
// speeches" sources of §1/§2.1). Speeches join with the custom graph
// by speaker name and with the tweet corpus by topic vocabulary.
func GenSpeeches(rng *rand.Rand, cfg Config, pols []Politician, n int) (*xmlstore.Store, error) {
	store := xmlstore.NewStore("speeches")
	if n <= 0 {
		return store, nil
	}
	venues := []string{"Assemblée nationale", "Sénat", "Élysée", "Hôtel de Ville", "Salon de l'Agriculture"}
	topics := []string{"etat-durgence", "agriculture", "economie", "education"}
	currentOf := make(map[string]Current)
	for _, p := range Parties {
		currentOf[p.ID] = p.Current
	}
	for i := 0; i < n; i++ {
		// Speeches are given by prominent figures; the head of state
		// speaks most (and always gets at least one agriculture speech).
		ai := int(float64(len(pols)) * rng.Float64() * rng.Float64() * rng.Float64())
		if ai >= len(pols) {
			ai = len(pols) - 1
		}
		speaker := pols[ai]
		topic := topics[rng.Intn(len(topics))]
		if i == 0 {
			speaker = pols[0]
			topic = "agriculture"
		}
		week := rng.Intn(cfg.Weeks)
		ts := cfg.Start.Add(time.Duration(week)*7*24*time.Hour +
			time.Duration(rng.Int63n(int64(7*24*time.Hour))))

		wt := emergencyWeeks[week%len(emergencyWeeks)]
		if topic == "agriculture" {
			wt = sideTopics[0]
		}
		body, _ := composeTweet(rng, currentOf[speaker.PartyID], wt)
		title := fmt.Sprintf("Discours sur %s", strings.ReplaceAll(topic, "-", " "))

		xml := fmt.Sprintf(`<speeches>
  <speech speaker="%s" date="%s" venue="%s">
    <title>%s</title>
    <topic>%s</topic>
    <body>%s %s</body>
  </speech>
</speeches>`,
			escapeXML(speaker.Name), ts.Format("2006-01-02"),
			escapeXML(venues[rng.Intn(len(venues))]),
			escapeXML(title), topic, escapeXML(body), escapeXML(body))
		if err := store.Add(fmt.Sprintf("sp%05d", i+1), []byte(xml)); err != nil {
			return nil, err
		}
	}
	return store, nil
}

func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;", "'", "&apos;")
	return r.Replace(s)
}
