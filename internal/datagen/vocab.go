package datagen

// Vocabulary models for synthetic tweets. The paper's Figure 3 shows
// per-party vocabulary evolving weekly on the state of emergency; the
// generator plants that structure so the PMI analytics recover it:
// every tweet mixes background terms, the author's current-specific
// terms, and the running week's topical terms (amplified for the
// currents the paper describes as driving that week's discourse).

// backgroundVocab is shared French political filler.
var backgroundVocab = []string{
	"france", "politique", "gouvernement", "république", "citoyens",
	"pays", "débat", "mesures", "réforme", "projet", "loi", "assemblée",
	"conseil", "ministre", "élections", "démocratie", "budget",
	"territoire", "service", "public", "travail", "emploi", "avenir",
	"société", "nation", "valeurs", "engagement", "action", "décision",
}

// currentVocab is each current's signature vocabulary.
var currentVocab = map[Current][]string{
	ExtremeLeft:  {"luttes", "grève", "capitalisme", "travailleurs", "austérité", "solidarité", "insoumission"},
	Left:         {"justice", "sociale", "égalité", "progrès", "laïcité", "solidarité", "vigilance"},
	Ecologist:    {"climat", "écologie", "transition", "énergie", "biodiversité", "libertés", "nucléaire"},
	Center:       {"dialogue", "europe", "équilibre", "responsabilité", "modération", "territoires"},
	Right:        {"sécurité", "autorité", "entreprises", "fiscalité", "famille", "ordre", "fermeté"},
	ExtremeRight: {"frontières", "immigration", "identité", "nationale", "souveraineté", "islamisme"},
}

// weekTopic describes one week of the state-of-emergency storyline
// (§3): factual → institutional → objections → vigilance.
type weekTopic struct {
	// terms are the week's topical vocabulary.
	terms []string
	// amplify boosts the topic for specific currents (the currents that
	// "own" the week's discourse in Figure 3).
	amplify map[Current]float64
	// hashtag tags a fraction of the week's tweets.
	hashtag string
}

var emergencyWeeks = []weekTopic{
	{ // week 1: factual, everyone reports events
		terms:   []string{"attentats", "victimes", "deuil", "hommage", "police", "état", "urgence"},
		amplify: map[Current]float64{},
		hashtag: "EtatDurgence",
	},
	{ // week 2: institutional (parliament votes)
		terms:   []string{"parlement", "vote", "prolongation", "assemblée", "constitution", "état", "urgence"},
		amplify: map[Current]float64{Left: 1.5, Right: 1.5},
		hashtag: "EtatDurgence",
	},
	{ // week 3: ecologist objections (abuses, excesses, risk)
		terms:   []string{"abus", "excès", "risque", "libertés", "perquisitions", "dérives", "état", "urgence"},
		amplify: map[Current]float64{Ecologist: 4.0, ExtremeLeft: 2.0},
		hashtag: "EtatDurgence",
	},
	{ // week 4: left asks for vigilance and control
		terms:   []string{"vigilance", "contrôle", "garanties", "juge", "équilibre", "état", "urgence"},
		amplify: map[Current]float64{Left: 3.0, ExtremeLeft: 1.5},
		hashtag: "EtatDurgence",
	},
}

// sideTopics occasionally replace the weekly storyline, giving the
// corpus hashtag diversity and the qSIA agriculture scenario.
var sideTopics = []weekTopic{
	{
		terms:   []string{"agriculture", "salon", "agriculteurs", "élevage", "ruralité", "terroir"},
		amplify: map[Current]float64{},
		hashtag: "SIA2016",
	},
	{
		terms:   []string{"chômage", "croissance", "économie", "entreprises", "emploi", "relance"},
		amplify: map[Current]float64{Right: 1.5},
		hashtag: "economie",
	},
	{
		terms:   []string{"école", "éducation", "enseignants", "collège", "réforme", "programmes"},
		amplify: map[Current]float64{Left: 1.5},
		hashtag: "education",
	},
}
