// Package datagen generates TATOOINE's synthetic mixed instance: the
// substitute for the paper's demonstration dataset (tweets of ~4,500
// French politicians collected since June 2015, 10K Facebook posts, a
// custom RDF graph of politicians/parties/currents, and INSEE-style
// statistics tables). Generation is fully deterministic under a seed.
//
// The generator plants the regularities the paper's experiments rely
// on: repeated values across sources (Twitter/Facebook accounts appear
// both in the RDF graph and in the document stores; department codes
// appear in several tables), party- and week-dependent vocabulary for
// the PMI tag clouds (Figure 3), and hashtags with controllable
// selectivity for the qSIA-style queries.
package datagen

import (
	"fmt"
	"math/rand"
	"time"

	"tatooine/internal/rdf"
)

// Config controls the generated dataset's scale and shape.
type Config struct {
	// Seed drives all randomness (same seed → same dataset).
	Seed int64
	// NumPoliticians scales the RDF graph (paper: ~4,500).
	NumPoliticians int
	// NumTweets scales the tweet store (paper: 1.6M).
	NumTweets int
	// NumFacebookPosts scales the Facebook store (paper: 10K).
	NumFacebookPosts int
	// Weeks is the number of weekly periods covered (Figure 3 shows 4).
	Weeks int
	// Start is the corpus start instant (tweets spread from here).
	Start time.Time
}

// DefaultConfig returns a laptop-friendly configuration.
func DefaultConfig() Config {
	return Config{
		Seed:             42,
		NumPoliticians:   120,
		NumTweets:        5000,
		NumFacebookPosts: 400,
		Weeks:            4,
		Start:            time.Date(2015, 11, 16, 0, 0, 0, 0, time.UTC),
	}
}

// Current is a political current, colour-coded in Figure 3.
type Current string

// The currents of the demonstration.
const (
	ExtremeLeft  Current = "extreme-left"
	Left         Current = "left"
	Right        Current = "right"
	ExtremeRight Current = "extreme-right"
	Ecologist    Current = "ecologist"
	Center       Current = "center"
)

// Party is a political party with its current and European Parliament
// group (the hand-built data source of §1).
type Party struct {
	ID      string
	Name    string
	Current Current
	EPGroup string
}

// Parties is the fixed synthetic party landscape.
var Parties = []Party{
	{"PG", "Parti de Gauche Synthétique", ExtremeLeft, "GUE/NGL"},
	{"PS", "Parti Socialiste Synthétique", Left, "S&D"},
	{"EELV", "Écologistes Synthétiques", Ecologist, "Greens/EFA"},
	{"MODEM", "Mouvement du Centre Synthétique", Center, "ALDE"},
	{"LR", "Les Républicains Synthétiques", Right, "EPP"},
	{"FN", "Front National Synthétique", ExtremeRight, "ENF"},
}

// Politician is one synthetic public figure.
type Politician struct {
	ID       string // e.g. POL00001
	Name     string
	Gender   string
	Position string // headOfState, minister, deputy, senator, mayor
	PartyID  string
	Twitter  string // screen name, joins to tweet user.screen_name
	Facebook string // account id, joins to Facebook posts
	DBPedia  string // synthetic LOD URI
	Dept     string // department code, joins to INSEE tables
}

var firstNames = []string{
	"françois", "jean", "anne", "marie", "pierre", "claude", "nicolas",
	"martine", "julien", "sophie", "alain", "nathalie", "bruno",
	"cécile", "manuel", "christiane", "laurent", "ségolène", "xavier",
	"florian", "hervé", "delphine", "éric", "aurélie", "gérard",
}

var lastNames = []string{
	"hollande", "dupont", "martin", "bernard", "durand", "moreau",
	"lefebvre", "garcia", "roux", "fournier", "lambert", "rousseau",
	"vincent", "muller", "faure", "blanc", "girard", "bonnet",
	"chevalier", "francois", "mercier", "boyer", "gauthier", "perrin",
}

var positions = []string{"deputy", "senator", "mayor", "minister", "MEP"}

// Departments is a subset of French departments (code → name), used by
// both the RDF graph and the INSEE tables (common naming for machines,
// §1).
var Departments = [][2]string{
	{"75", "Paris"}, {"92", "Hauts-de-Seine"}, {"93", "Seine-Saint-Denis"},
	{"69", "Rhône"}, {"13", "Bouches-du-Rhône"}, {"33", "Gironde"},
	{"59", "Nord"}, {"29", "Finistère"}, {"31", "Haute-Garonne"},
	{"67", "Bas-Rhin"},
}

// GenPoliticians deterministically generates n politicians. The first
// one is always the head of state (the demonstration's running
// example); parties are assigned round-robin weighted by size.
func GenPoliticians(rng *rand.Rand, n int) []Politician {
	if n < len(Parties) {
		n = len(Parties)
	}
	out := make([]Politician, 0, n)
	for i := 0; i < n; i++ {
		first := firstNames[rng.Intn(len(firstNames))]
		last := lastNames[rng.Intn(len(lastNames))]
		p := Politician{
			ID:      fmt.Sprintf("POL%05d", i+1),
			Name:    title(first) + " " + title(last),
			Gender:  []string{"female", "male"}[rng.Intn(2)],
			PartyID: Parties[i%len(Parties)].ID,
			Dept:    Departments[rng.Intn(len(Departments))][0],
		}
		if i == 0 {
			p.Position = "headOfState"
			p.PartyID = "PS"
		} else {
			p.Position = positions[rng.Intn(len(positions))]
		}
		p.Twitter = fmt.Sprintf("%c%s%02d", first[0], last, i%100)
		p.Facebook = "fb." + p.Twitter
		p.DBPedia = "http://dbpedia.example/resource/" + p.ID
		out = append(out, p)
	}
	return out
}

func title(s string) string {
	if s == "" {
		return s
	}
	r := []rune(s)
	if r[0] >= 'a' && r[0] <= 'z' {
		r[0] = r[0] - 'a' + 'A'
	}
	return string(r)
}

// Prefix namespaces of the generated RDF graph.
const (
	NS    = "http://tatooine.example/"
	NSPol = "http://tatooine.example/pol/"
)

// BuildGraph renders politicians and parties as the custom RDF graph G
// of the mixed instance, including a small RDFS ontology (politicians
// are persons; every position is a sub-class of politician's roles).
func BuildGraph(pols []Politician) *rdf.Graph {
	g := rdf.NewGraph()
	iri := func(local string) rdf.Term { return rdf.NewIRI(NS + local) }
	add := func(s, p, o rdf.Term) { g.Add(rdf.Triple{S: s, P: p, O: o}) }
	typ := rdf.NewIRI(rdf.RDFType)

	// Ontology.
	add(iri("politician"), rdf.NewIRI(rdf.RDFSSubClassOf), iri("person"))
	add(iri("memberOf"), rdf.NewIRI(rdf.RDFSRange), iri("party"))
	add(iri("twitterAccount"), rdf.NewIRI(rdf.RDFSDomain), iri("person"))

	for _, pt := range Parties {
		s := iri("party/" + pt.ID)
		add(s, typ, iri("party"))
		add(s, rdf.NewIRI(rdf.FOAFName), rdf.NewLiteral(pt.Name))
		add(s, iri("currentOf"), iri("current/"+string(pt.Current)))
		add(s, iri("epGroup"), rdf.NewLiteral(pt.EPGroup))
	}
	for _, p := range pols {
		s := rdf.NewIRI(NSPol + p.ID)
		add(s, typ, iri("politician"))
		add(s, rdf.NewIRI(rdf.FOAFName), rdf.NewLiteral(p.Name))
		add(s, iri("gender"), rdf.NewLiteral(p.Gender))
		add(s, iri("position"), iri(p.Position))
		add(s, iri("memberOf"), iri("party/"+p.PartyID))
		add(s, iri("twitterAccount"), rdf.NewLiteral(p.Twitter))
		add(s, iri("facebookAccount"), rdf.NewLiteral(p.Facebook))
		add(s, iri("dbpedia"), rdf.NewIRI(p.DBPedia))
		add(s, iri("electedIn"), rdf.NewLiteral(p.Dept))
	}
	return g
}
