package datagen

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"tatooine/internal/doc"
	"tatooine/internal/fulltext"
)

// TweetSchema is the index schema for generated tweets (Figure 2's
// shape).
func TweetSchema() fulltext.Schema {
	return fulltext.Schema{
		"text":                 fulltext.TextField,
		"user.screen_name":     fulltext.KeywordField,
		"user.name":            fulltext.KeywordField,
		"entities.hashtags":    fulltext.KeywordField,
		"retweet_count":        fulltext.NumericField,
		"favorite_count":       fulltext.NumericField,
		"created_at":           fulltext.TimeField,
		"user.followers_count": fulltext.NumericField,
	}
}

// FacebookSchema is the index schema for generated Facebook posts.
func FacebookSchema() fulltext.Schema {
	return fulltext.Schema{
		"message":      fulltext.TextField,
		"from.id":      fulltext.KeywordField,
		"from.name":    fulltext.KeywordField,
		"created_time": fulltext.TimeField,
		"likes":        fulltext.NumericField,
		"shares":       fulltext.NumericField,
		"comments":     fulltext.NumericField,
	}
}

// GenTweets fills an index with n synthetic tweets over cfg.Weeks
// weekly periods. Authors are drawn from pols (weighted towards the
// first entries, public figures tweet more); each tweet follows the
// weekly storyline or a side topic.
func GenTweets(rng *rand.Rand, cfg Config, pols []Politician, n int) (*fulltext.Index, error) {
	ix := fulltext.NewIndex("tweets", TweetSchema())
	currentOf := make(map[string]Current)
	for _, p := range Parties {
		currentOf[p.ID] = p.Current
	}
	for i := 0; i < n; i++ {
		// Zipf-ish author pick: prominent politicians tweet more.
		ai := int(float64(len(pols)) * rng.Float64() * rng.Float64())
		if ai >= len(pols) {
			ai = len(pols) - 1
		}
		author := pols[ai]
		week := rng.Intn(cfg.Weeks)
		ts := cfg.Start.Add(time.Duration(week)*7*24*time.Hour +
			time.Duration(rng.Int63n(int64(7*24*time.Hour))))

		topic := emergencyWeeks[week%len(emergencyWeeks)]
		// 25% of tweets go to side topics (hashtag diversity; the head
		// of state reliably visits the agriculture fair).
		if rng.Float64() < 0.25 || (author.Position == "headOfState" && rng.Float64() < 0.3) {
			topic = sideTopics[rng.Intn(len(sideTopics))]
		}
		text, tags := composeTweet(rng, currentOf[author.PartyID], topic)

		d := &doc.Document{ID: fmt.Sprintf("tw%08d", i+1)}
		d.Set("text", text)
		d.Set("user.screen_name", author.Twitter)
		d.Set("user.name", author.Name)
		d.Set("user.followers_count", 1000+rng.Intn(2_000_000))
		d.Set("created_at", ts.Format(time.RFC3339))
		d.Set("retweet_count", int(rng.ExpFloat64()*80))
		d.Set("favorite_count", int(rng.ExpFloat64()*150))
		anyTags := make([]any, len(tags))
		for j, h := range tags {
			anyTags[j] = h
		}
		d.Set("entities.hashtags", anyTags)
		if err := ix.Add(d); err != nil {
			return nil, err
		}
	}
	return ix, nil
}

// composeTweet samples 8–16 words: background, current-signature and
// topical terms (topical share amplified for the currents driving the
// week's discourse), and returns the text plus its hashtags.
func composeTweet(rng *rand.Rand, cur Current, topic weekTopic) (string, []string) {
	nWords := 8 + rng.Intn(9)
	amp := 1.0
	if a, ok := topic.amplify[cur]; ok && a > 0 {
		amp = a
	}
	topicShare := 0.25 * amp
	if topicShare > 0.7 {
		topicShare = 0.7
	}
	curShare := 0.25
	var words []string
	for len(words) < nWords {
		r := rng.Float64()
		switch {
		case r < topicShare && len(topic.terms) > 0:
			words = append(words, topic.terms[rng.Intn(len(topic.terms))])
		case r < topicShare+curShare:
			cv := currentVocab[cur]
			if len(cv) == 0 {
				cv = backgroundVocab
			}
			words = append(words, cv[rng.Intn(len(cv))])
		default:
			words = append(words, backgroundVocab[rng.Intn(len(backgroundVocab))])
		}
	}
	var tags []string
	if topic.hashtag != "" && rng.Float64() < 0.8 {
		tags = append(tags, topic.hashtag)
		words = append(words, "#"+topic.hashtag)
	}
	return strings.Join(words, " "), tags
}

// GenFacebookPosts fills an index with n synthetic Facebook posts
// shaped like the paper's collection (author, timestamps, stemmed text,
// likes/shares/comments).
func GenFacebookPosts(rng *rand.Rand, cfg Config, pols []Politician, n int) (*fulltext.Index, error) {
	ix := fulltext.NewIndex("fbposts", FacebookSchema())
	currentOf := make(map[string]Current)
	for _, p := range Parties {
		currentOf[p.ID] = p.Current
	}
	for i := 0; i < n; i++ {
		ai := int(float64(len(pols)) * rng.Float64() * rng.Float64())
		if ai >= len(pols) {
			ai = len(pols) - 1
		}
		author := pols[ai]
		week := rng.Intn(cfg.Weeks)
		ts := cfg.Start.Add(time.Duration(week)*7*24*time.Hour +
			time.Duration(rng.Int63n(int64(7*24*time.Hour))))
		topic := emergencyWeeks[week%len(emergencyWeeks)]
		text, _ := composeTweet(rng, currentOf[author.PartyID], topic)

		d := &doc.Document{ID: fmt.Sprintf("fb%07d", i+1)}
		d.Set("message", text+" "+text) // posts are longer than tweets
		d.Set("from.id", author.Facebook)
		d.Set("from.name", author.Name)
		d.Set("created_time", ts.Format(time.RFC3339))
		d.Set("likes", int(rng.ExpFloat64()*400))
		d.Set("shares", int(rng.ExpFloat64()*60))
		d.Set("comments", int(rng.ExpFloat64()*90))
		if err := ix.Add(d); err != nil {
			return nil, err
		}
	}
	return ix, nil
}
