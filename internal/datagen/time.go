package datagen

import "time"

// parseTime accepts the timestamp formats the generator and Figure 2
// use.
func parseTime(s string) (time.Time, bool) {
	for _, layout := range []string{time.RFC3339, "2006-01-02 15:04:05", "2006-01-02"} {
		if t, err := time.Parse(layout, s); err == nil {
			return t, true
		}
	}
	return time.Time{}, false
}
