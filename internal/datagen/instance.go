package datagen

import (
	"fmt"
	"math/rand"

	"tatooine/internal/core"
	"tatooine/internal/doc"
	"tatooine/internal/fulltext"
	"tatooine/internal/rdf"
	"tatooine/internal/relstore"
	"tatooine/internal/source"
	"tatooine/internal/xmlstore"
)

// Dataset is a fully generated mixed instance's raw material.
type Dataset struct {
	Config      Config
	Politicians []Politician
	Graph       *rdf.Graph
	Tweets      *fulltext.Index
	Facebook    *fulltext.Index
	Speeches    *xmlstore.Store
	INSEE       *relstore.Database
	Regional    map[string]*relstore.Database // uri → db
}

// Source URIs of the assembled instance.
const (
	TweetsURI   = "solr://tweets"
	FacebookURI = "solr://fbposts"
	SpeechesURI = "xml://speeches"
	INSEEURI    = "sql://insee"
)

// RegionalURIs lists the dynamically-discoverable regional databases.
var RegionalURIs = []string{"sql://region-idf", "sql://region-bzh", "sql://region-paca"}

// Generate builds the full dataset under cfg.
func Generate(cfg Config) (*Dataset, error) {
	if cfg.Weeks <= 0 {
		cfg.Weeks = 4
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := &Dataset{Config: cfg, Regional: make(map[string]*relstore.Database)}
	ds.Politicians = GenPoliticians(rng, cfg.NumPoliticians)
	ds.Graph = BuildGraph(ds.Politicians)
	var err error
	ds.Tweets, err = GenTweets(rng, cfg, ds.Politicians, cfg.NumTweets)
	if err != nil {
		return nil, fmt.Errorf("datagen: tweets: %w", err)
	}
	ds.Facebook, err = GenFacebookPosts(rng, cfg, ds.Politicians, cfg.NumFacebookPosts)
	if err != nil {
		return nil, fmt.Errorf("datagen: facebook: %w", err)
	}
	ds.Speeches, err = GenSpeeches(rng, cfg, ds.Politicians, cfg.NumFacebookPosts/4+1)
	if err != nil {
		return nil, fmt.Errorf("datagen: speeches: %w", err)
	}
	ds.INSEE, err = GenINSEE(rng, cfg, RegionalURIs)
	if err != nil {
		return nil, fmt.Errorf("datagen: insee: %w", err)
	}
	for _, uri := range RegionalURIs {
		db, err := GenRegionalDB(rng, uri)
		if err != nil {
			return nil, fmt.Errorf("datagen: regional: %w", err)
		}
		ds.Regional[uri] = db
	}
	return ds, nil
}

// Instance assembles the mixed instance I = (G, D) from the dataset.
// Extra options (e.g. core.WithSaturation for the serving path) are
// applied on top of the standard prefixes.
func (ds *Dataset) Instance(opts ...core.InstanceOption) (*core.Instance, error) {
	in := core.NewInstance(ds.Graph, ds.instanceOptions(opts)...)
	if err := ds.registerSources(in); err != nil {
		return nil, err
	}
	return in, nil
}

// PersistentInstance assembles the mixed instance on a durable store
// rooted at dir (core.Open). A fresh directory is seeded with the
// generated custom graph; a warm one adopts the stored graph, epoch
// and saturation as-is, skipping the seed entirely. Live external
// sources (full-text indexes, XML store, relational databases) are
// in-process objects either way, so they are (re-)registered on every
// boot; only the custom graph side persists. The returned warm flag
// reports which path was taken.
func (ds *Dataset) PersistentInstance(dir string, opts ...core.InstanceOption) (in *core.Instance, warm bool, err error) {
	in, err = core.Open(dir, ds.instanceOptions(opts)...)
	if err != nil {
		return nil, false, err
	}
	warm = in.Epoch() > 0 || in.Graph().Size() > 0
	if !warm {
		in.AddTriples(ds.Graph.Triples())
	}
	if err := ds.registerSources(in); err != nil {
		in.Close()
		return nil, false, err
	}
	if err := in.StoreErr(); err != nil {
		in.Close()
		return nil, false, err
	}
	return in, warm, nil
}

func (ds *Dataset) instanceOptions(opts []core.InstanceOption) []core.InstanceOption {
	return append([]core.InstanceOption{core.WithPrefixes(map[string]string{
		"":    NS,
		"pol": NSPol,
	})}, opts...)
}

func (ds *Dataset) registerSources(in *core.Instance) error {
	srcs := []source.DataSource{
		source.NewDocSource(TweetsURI, ds.Tweets),
		source.NewDocSource(FacebookURI, ds.Facebook),
		source.NewXMLSource(SpeechesURI, ds.Speeches),
		source.NewRelSource(INSEEURI, ds.INSEE),
	}
	for uri, db := range ds.Regional {
		srcs = append(srcs, source.NewRelSource(uri, db))
	}
	for _, s := range srcs {
		if err := in.AddSource(s); err != nil {
			return err
		}
	}
	return nil
}

// PartyOf returns the party and current of a Twitter screen name, as
// the demonstration resolves authors through the custom graph.
func (ds *Dataset) PartyOf(screenName string) (Party, bool) {
	for _, p := range ds.Politicians {
		if p.Twitter == screenName {
			for _, pt := range Parties {
				if pt.ID == p.PartyID {
					return pt, true
				}
			}
		}
	}
	return Party{}, false
}

// Classifier returns an analytics classifier resolving tweets to
// (party, week) through the politician graph, mirroring the mixed
// query of scenario (2).
func (ds *Dataset) Classifier() func(d *doc.Document) (string, int, bool) {
	byTwitter := make(map[string]string, len(ds.Politicians))
	for _, p := range ds.Politicians {
		byTwitter[p.Twitter] = p.PartyID
	}
	start := ds.Config.Start
	return func(d *doc.Document) (string, int, bool) {
		vals := d.Values("user.screen_name")
		if len(vals) == 0 {
			return "", 0, false
		}
		party, ok := byTwitter[vals[0].Str()]
		if !ok {
			return "", 0, false
		}
		tvals := d.Values("created_at")
		if len(tvals) == 0 {
			return "", 0, false
		}
		ts, okT := parseTime(tvals[0].String())
		if !okT {
			return "", 0, false
		}
		week := int(ts.Sub(start).Hours() / (24 * 7))
		return party, week + 1, true
	}
}

// CurrentOfParty maps party IDs to their current names (for viz
// colouring).
func CurrentOfParty() map[string]string {
	out := make(map[string]string, len(Parties))
	for _, p := range Parties {
		out[p.ID] = string(p.Current)
	}
	return out
}
