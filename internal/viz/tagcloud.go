// Package viz renders TATOOINE analytics as visualizations: the
// Figure 3 tag cloud grid (weeks × parties, term size by PMI score,
// colour by political current) as HTML/SVG-free self-contained HTML,
// plus a terminal rendering for CLI use.
package viz

import (
	"fmt"
	"html"
	"math"
	"sort"
	"strings"

	"tatooine/internal/analytics"
)

// CurrentColors maps political currents to the colours of Figure 3:
// extreme-left red, left pink, right blue, extreme-right dark blue,
// ecologists green.
var CurrentColors = map[string]string{
	"extreme-left":  "#d62728",
	"left":          "#e377c2",
	"right":         "#1f77b4",
	"extreme-right": "#1a3a6b",
	"ecologist":     "#2ca02c",
	"center":        "#ff7f0e",
}

// colorFor returns the colour for a party current, defaulting to gray.
func colorFor(current string) string {
	if c, ok := CurrentColors[strings.ToLower(current)]; ok {
		return c
	}
	return "#555555"
}

// HTMLOptions configure the HTML tag cloud grid.
type HTMLOptions struct {
	// Title heads the page.
	Title string
	// CurrentOf maps a party name to its political current (colour).
	CurrentOf map[string]string
	// MinFont/MaxFont bound term font sizes in px.
	MinFont, MaxFont int
	// WeekLabel renders a week index as a label (default "week N").
	WeekLabel func(week int) string
}

// RenderHTML renders the tag clouds as a self-contained HTML page:
// one row per week, one cell per party, terms sized by log-scaled PMI.
func RenderHTML(tc *analytics.TagClouds, opts HTMLOptions) string {
	if opts.MinFont <= 0 {
		opts.MinFont = 11
	}
	if opts.MaxFont <= opts.MinFont {
		opts.MaxFont = 34
	}
	if opts.WeekLabel == nil {
		opts.WeekLabel = func(w int) string { return fmt.Sprintf("week %d", w) }
	}
	parties := tc.PartyNames()

	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n")
	fmt.Fprintf(&b, "<title>%s</title>\n", html.EscapeString(opts.Title))
	b.WriteString(`<style>
body { font-family: sans-serif; margin: 1em; }
table { border-collapse: collapse; width: 100%; }
td, th { border: 1px solid #ddd; vertical-align: top; padding: 8px; }
th { background: #f5f5f5; }
.cloud span { margin: 0 4px; line-height: 1.6; display: inline-block; }
caption { font-size: 1.3em; margin-bottom: .5em; text-align: left; }
</style></head><body>
`)
	fmt.Fprintf(&b, "<table><caption>%s</caption>\n<tr><th></th>", html.EscapeString(opts.Title))
	for _, p := range parties {
		cur := opts.CurrentOf[p]
		fmt.Fprintf(&b, `<th style="color:%s">%s</th>`, colorFor(cur), html.EscapeString(p))
	}
	b.WriteString("</tr>\n")
	for _, wk := range tc.Weeks {
		fmt.Fprintf(&b, "<tr><th>%s</th>", html.EscapeString(opts.WeekLabel(wk.Week)))
		for _, p := range parties {
			terms := wk.Parties[p]
			b.WriteString(`<td class="cloud">`)
			b.WriteString(cloudCell(terms, colorFor(opts.CurrentOf[p]), opts.MinFont, opts.MaxFont))
			b.WriteString("</td>")
		}
		b.WriteString("</tr>\n")
	}
	b.WriteString("</table></body></html>\n")
	return b.String()
}

func cloudCell(terms []analytics.TermScore, color string, minFont, maxFont int) string {
	if len(terms) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, t := range terms {
		s := math.Log1p(t.Score)
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	scale := func(score float64) int {
		if hi == lo {
			return (minFont + maxFont) / 2
		}
		f := (math.Log1p(score) - lo) / (hi - lo)
		return minFont + int(f*float64(maxFont-minFont))
	}
	// Alphabetical order inside a cloud reads better than rank order.
	sorted := append([]analytics.TermScore(nil), terms...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Term < sorted[j].Term })
	var b strings.Builder
	for _, t := range sorted {
		fmt.Fprintf(&b, `<span style="font-size:%dpx;color:%s" title="pmi=%.2f n=%d">%s</span> `,
			scale(t.Score), color, t.Score, t.Count, html.EscapeString(t.Term))
	}
	return b.String()
}

// RenderText renders the clouds for terminals: one block per week, one
// line per party with its top terms and scores.
func RenderText(tc *analytics.TagClouds, currentOf map[string]string, topK int) string {
	var b strings.Builder
	parties := tc.PartyNames()
	for _, wk := range tc.Weeks {
		fmt.Fprintf(&b, "== week %d ==\n", wk.Week)
		for _, p := range parties {
			terms := wk.Parties[p]
			if len(terms) == 0 {
				continue
			}
			if topK > 0 && len(terms) > topK {
				terms = terms[:topK]
			}
			var parts []string
			for _, t := range terms {
				parts = append(parts, fmt.Sprintf("%s(%.1f)", t.Term, t.Score))
			}
			cur := currentOf[p]
			if cur != "" {
				cur = " [" + cur + "]"
			}
			fmt.Fprintf(&b, "  %-16s%s %s\n", p, cur, strings.Join(parts, " "))
		}
	}
	return b.String()
}
