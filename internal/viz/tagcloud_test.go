package viz

import (
	"strings"
	"testing"

	"tatooine/internal/analytics"
)

func sampleClouds() *analytics.TagClouds {
	return &analytics.TagClouds{
		Weeks: []analytics.WeekClouds{
			{Week: 1, Parties: map[string][]analytics.TermScore{
				"PS":   {{Term: "deuil", Score: 3.0, Count: 5}, {Term: "national", Score: 1.5, Count: 3}},
				"EELV": {{Term: "solidarite", Score: 2.0, Count: 4}},
			}},
			{Week: 2, Parties: map[string][]analytics.TermScore{
				"PS":   {{Term: "vote", Score: 2.5, Count: 6}},
				"EELV": {{Term: "abus", Score: 4.0, Count: 7}, {Term: "exces", Score: 3.5, Count: 5}},
			}},
		},
	}
}

func TestRenderHTML(t *testing.T) {
	currents := map[string]string{"PS": "left", "EELV": "ecologist"}
	out := RenderHTML(sampleClouds(), HTMLOptions{
		Title:     "State of emergency",
		CurrentOf: currents,
	})
	for _, want := range []string{
		"<!DOCTYPE html>",
		"State of emergency",
		"abus",
		CurrentColors["left"],
		CurrentColors["ecologist"],
		"week 1", "week 2",
		"pmi=4.00",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("HTML missing %q", want)
		}
	}
	// Higher-PMI terms get larger fonts within a cell.
	abusIdx := strings.Index(out, ">abus<")
	if abusIdx < 0 {
		t.Fatal("abus span missing")
	}
}

func TestRenderHTMLEscapes(t *testing.T) {
	tc := &analytics.TagClouds{Weeks: []analytics.WeekClouds{
		{Week: 1, Parties: map[string][]analytics.TermScore{
			"<script>": {{Term: "<b>", Score: 1, Count: 1}},
		}},
	}}
	out := RenderHTML(tc, HTMLOptions{Title: "x & y"})
	if strings.Contains(out, "<script>") || strings.Contains(out, "<b>") {
		t.Error("unescaped HTML in output")
	}
	if !strings.Contains(out, "&lt;script&gt;") {
		t.Error("party name not escaped")
	}
}

func TestRenderText(t *testing.T) {
	out := RenderText(sampleClouds(), map[string]string{"PS": "left"}, 1)
	for _, want := range []string{"== week 1 ==", "== week 2 ==", "abus(4.0)", "[left]"} {
		if !strings.Contains(out, want) {
			t.Errorf("text missing %q:\n%s", want, out)
		}
	}
	// topK=1 must cut EELV week 2 to one term.
	if strings.Contains(out, "exces") {
		t.Error("topK cut not applied")
	}
}

func TestColorDefault(t *testing.T) {
	if colorFor("unknown-current") != "#555555" {
		t.Error("default colour")
	}
	if colorFor("LEFT") != CurrentColors["left"] {
		t.Error("case-insensitive colour lookup")
	}
}
