package obs

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds metric families and renders them in Prometheus text
// exposition format (version 0.0.4). Families are get-or-create: asking
// twice for the same name returns the same metric, so package-level
// instrumentation needs no registration phase. All metric operations
// are atomic; Registry methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// Default is the process-wide registry: subsystems without their own
// handle (pager, probe caches, executors, federation clients)
// instrument against it. Servers keep their per-instance counters on
// their own Registry and serve both merged on GET /metrics.
var Default = NewRegistry()

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

type metricKind int

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one metric name: its metadata plus its children, keyed by
// label value ("" for the unlabeled single child).
type family struct {
	name, help, label string
	kind              metricKind
	buckets           []float64 // histogram families only

	mu       sync.Mutex
	children map[string]any // label value -> *Counter | *Gauge | *Histogram
	order    []string       // label values in first-seen order
}

func (r *Registry) family(name, help, label string, kind metricKind, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, label: label, kind: kind,
			buckets: buckets, children: make(map[string]any)}
		r.families[name] = f
		return f
	}
	if f.kind != kind || f.label != label {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s/%q (was %s/%q)",
			name, kind, label, f.kind, f.label))
	}
	return f
}

func (f *family) child(labelValue string) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[labelValue]; ok {
		return c
	}
	var c any
	switch f.kind {
	case counterKind:
		c = &Counter{}
	case gaugeKind:
		c = &Gauge{}
	default:
		c = newHistogram(f.buckets)
	}
	f.children[labelValue] = c
	f.order = append(f.order, labelValue)
	return c
}

// Counter registers (or finds) an unlabeled monotone counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, "", counterKind, nil).child("").(*Counter)
}

// CounterVec registers a counter family with one label dimension.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	return &CounterVec{f: r.family(name, help, label, counterKind, nil)}
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, "", gaugeKind, nil).child("").(*Gauge)
}

// GaugeVec registers a gauge family with one label dimension.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	return &GaugeVec{f: r.family(name, help, label, gaugeKind, nil)}
}

// Histogram registers (or finds) an unlabeled histogram over the given
// bucket upper bounds (ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.family(name, help, "", histogramKind, buckets).child("").(*Histogram)
}

// HistogramVec registers a histogram family with one label dimension.
func (r *Registry) HistogramVec(name, help, label string, buckets []float64) *HistogramVec {
	return &HistogramVec{f: r.family(name, help, label, histogramKind, buckets)}
}

// Counter is a monotonically increasing int64.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 to keep the counter monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable int64.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets (cumulative on
// render, as Prometheus expects) and tracks their sum.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last = over the largest bound
	count  atomic.Int64
	sum    atomicFloat
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// CounterVec, GaugeVec and HistogramVec hand out the per-label-value
// child metric, creating it on first use.
type CounterVec struct{ f *family }

// With returns the counter for one label value.
func (v *CounterVec) With(labelValue string) *Counter { return v.f.child(labelValue).(*Counter) }

// GaugeVec is the labeled Gauge family.
type GaugeVec struct{ f *family }

// With returns the gauge for one label value.
func (v *GaugeVec) With(labelValue string) *Gauge { return v.f.child(labelValue).(*Gauge) }

// HistogramVec is the labeled Histogram family.
type HistogramVec struct{ f *family }

// With returns the histogram for one label value.
func (v *HistogramVec) With(labelValue string) *Histogram { return v.f.child(labelValue).(*Histogram) }

// atomicFloat is an atomically updated float64 (CAS on its bits).
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// DurationBuckets are the exponential histogram bounds used for every
// latency metric: 100µs doubling to ~13s (18 buckets), covering a
// cache-hit probe through a many-round-trip cold federated join.
func DurationBuckets() []float64 {
	b := make([]float64, 18)
	v := 0.0001
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}

// Render writes the registry in Prometheus text exposition format,
// families sorted by name for stable scrapes.
func (r *Registry) Render(b *strings.Builder) {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()
	for _, f := range fams {
		f.render(b)
	}
}

func (f *family) render(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	f.mu.Lock()
	order := append([]string(nil), f.order...)
	children := make([]any, len(order))
	for i, lv := range order {
		children[i] = f.children[lv]
	}
	f.mu.Unlock()
	for i, lv := range order {
		switch c := children[i].(type) {
		case *Counter:
			fmt.Fprintf(b, "%s%s %d\n", f.name, f.labelPart(lv, ""), c.Value())
		case *Gauge:
			fmt.Fprintf(b, "%s%s %d\n", f.name, f.labelPart(lv, ""), c.Value())
		case *Histogram:
			cum := int64(0)
			for j, bound := range c.bounds {
				cum += c.counts[j].Load()
				fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
					f.labelPart(lv, formatFloat(bound)), cum)
			}
			cum += c.counts[len(c.bounds)].Load()
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, f.labelPart(lv, "+Inf"), cum)
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name, f.labelPart(lv, ""), formatFloat(c.Sum()))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name, f.labelPart(lv, ""), cum)
		}
	}
}

// labelPart renders the {label="value",le="bound"} sample suffix;
// empty when the sample carries no labels at all.
func (f *family) labelPart(labelValue, le string) string {
	var parts []string
	if f.label != "" {
		parts = append(parts, f.label+`="`+escapeLabel(labelValue)+`"`)
	}
	if le != "" {
		parts = append(parts, `le="`+le+`"`)
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// Handler serves GET /metrics over the given registries, rendered in
// order (use it as Handler(serverRegistry, obs.Default) so per-server
// counters and process-wide subsystem metrics land in one scrape).
func Handler(regs ...*Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var b strings.Builder
		for _, reg := range regs {
			reg.Render(&b)
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(b.String()))
	})
}
