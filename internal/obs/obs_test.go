package obs

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	root := NewTrace("query")
	if root.TraceID() == "" || root.ID() == "" {
		t.Fatal("root span missing IDs")
	}
	plan := root.StartChild("plan")
	plan.SetAttr("atoms", "3")
	plan.End()
	node := root.StartChild("node")
	probe := node.StartChild("probe")
	probe.End()
	node.End()
	root.End()

	d := root.Data()
	if d == nil || d.TraceID != root.TraceID() {
		t.Fatalf("Data root trace ID = %+v", d)
	}
	if len(d.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(d.Children))
	}
	var foundProbe bool
	for _, c := range d.Children {
		if c.Name == "plan" && c.Attrs["atoms"] != "3" {
			t.Fatalf("plan attrs = %v", c.Attrs)
		}
		if c.Name == "node" {
			if len(c.Children) != 1 || c.Children[0].Name != "probe" {
				t.Fatalf("node children = %+v", c.Children)
			}
			foundProbe = true
		}
	}
	if !foundProbe {
		t.Fatal("probe span not nested under node")
	}
	if !strings.Contains(d.Render(), "probe") {
		t.Fatalf("Render missing probe:\n%s", d.Render())
	}
}

func TestNilSpanIsNoOp(t *testing.T) {
	var s *Span
	s.SetAttr("k", "v")
	s.End()
	if s.StartChild("c") != nil {
		t.Fatal("nil span spawned a child")
	}
	if s.TraceID() != "" || s.ID() != "" || s.Duration() != 0 || s.Data() != nil {
		t.Fatal("nil span not a no-op")
	}
}

func TestSpanCap(t *testing.T) {
	root := NewTrace("big")
	for i := 0; i < DefaultMaxSpans+10; i++ {
		root.StartChild("child").End()
	}
	kept, dropped := root.Spans()
	if kept != DefaultMaxSpans {
		t.Fatalf("kept = %d, want %d", kept, DefaultMaxSpans)
	}
	if dropped != 11 { // 10 over plus the one that hit the cap
		t.Fatalf("dropped = %d, want 11", dropped)
	}
	if root.Data().Dropped != 11 {
		t.Fatalf("Data dropped = %d", root.Data().Dropped)
	}
}

func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if SpanFromContext(ctx) != nil {
		t.Fatal("empty ctx returned a span")
	}
	ctx2, s, owned := EnsureSpan(ctx, "root")
	if s == nil || !owned {
		t.Fatal("EnsureSpan should create an owned root")
	}
	if SpanFromContext(ctx2) != s {
		t.Fatal("ctx does not carry the span")
	}
	ctx3, c := StartSpan(ctx2, "child")
	if c == nil || SpanFromContext(ctx3) != c {
		t.Fatal("StartSpan did not nest")
	}
	if c.TraceID() != s.TraceID() {
		t.Fatal("child trace ID differs")
	}
	_, c2, owned2 := EnsureSpan(ctx2, "sub")
	if owned2 || c2.TraceID() != s.TraceID() {
		t.Fatal("EnsureSpan under existing trace should join it")
	}
}

func TestMetricsRender(t *testing.T) {
	r := NewRegistry()
	r.Counter("tat_test_total", "test counter").Add(5)
	r.Gauge("tat_test_gauge", "test gauge").Set(-2)
	h := r.Histogram("tat_test_seconds", "test histogram", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.CounterVec("tat_test_labeled_total", "labeled", "source").With(`s"rc\x`).Inc()

	var b strings.Builder
	r.Render(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE tat_test_total counter\n",
		"tat_test_total 5\n",
		"# TYPE tat_test_gauge gauge\n",
		"tat_test_gauge -2\n",
		"# TYPE tat_test_seconds histogram\n",
		`tat_test_seconds_bucket{le="0.1"} 1` + "\n",
		`tat_test_seconds_bucket{le="1"} 2` + "\n",
		`tat_test_seconds_bucket{le="+Inf"} 3` + "\n",
		"tat_test_seconds_sum 5.55\n",
		"tat_test_seconds_count 3\n",
		`tat_test_labeled_total{source="s\"rc\\x"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
	if h.Count() != 3 || h.Sum() != 5.55 {
		t.Fatalf("histogram count/sum = %d/%g", h.Count(), h.Sum())
	}
}

func TestMetricsGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("tat_same_total", "x")
	b := r.Counter("tat_same_total", "x")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	v := r.CounterVec("tat_vec_total", "x", "k")
	if v.With("a") != v.With("a") || v.With("a") == v.With("b") {
		t.Fatal("vec children not keyed by label value")
	}
}

func TestRecorderRingAndSlow(t *testing.T) {
	rec := NewRecorder(3, 10*time.Millisecond, nil)
	for i := 0; i < 5; i++ {
		rec.Record(QueryRecord{Query: strings.Repeat("q", i+1), Duration: time.Duration(i) * 4 * time.Millisecond})
	}
	records, total := rec.Snapshot()
	if total != 5 {
		t.Fatalf("total = %d, want 5", total)
	}
	if len(records) != 3 {
		t.Fatalf("ring = %d, want 3", len(records))
	}
	if records[0].Query != "qqqqq" || records[2].Query != "qqq" {
		t.Fatalf("order wrong: %q ... %q", records[0].Query, records[2].Query)
	}
	if !records[0].Slow || records[2].Slow {
		t.Fatalf("slow flags wrong: %+v", records)
	}

	var nilRec *Recorder
	nilRec.Record(QueryRecord{}) // must not panic
	if _, n := nilRec.Snapshot(); n != 0 {
		t.Fatal("nil recorder not empty")
	}
}

func TestWrapJoinsAndEchoesTrace(t *testing.T) {
	var gotTrace, gotParent string
	h := Wrap("test", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s := SpanFromContext(r.Context())
		gotTrace = s.TraceID()
		if f, ok := w.(http.Flusher); !ok {
			t.Error("wrapped writer lost http.Flusher")
		} else {
			_, _ = w.Write([]byte("ok"))
			f.Flush()
		}
	}), nil)
	srv := httptest.NewServer(h)
	defer srv.Close()

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/x", nil)
	req.Header.Set(TraceHeader, "00000000deadbeef")
	req.Header.Set(SpanHeader, "00000000cafef00d")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.ReadAll(resp.Body)
	resp.Body.Close()

	if gotTrace != "00000000deadbeef" {
		t.Fatalf("handler trace = %q, want joined remote trace", gotTrace)
	}
	_ = gotParent
	if resp.Header.Get(TraceHeader) != "00000000deadbeef" {
		t.Fatalf("response trace header = %q", resp.Header.Get(TraceHeader))
	}
	if resp.Header.Get(SpanHeader) == "" {
		t.Fatal("response span header missing")
	}
	if resp.Header.Get(ServerTimeHeader) == "" {
		t.Fatal("server time header missing")
	}
}
