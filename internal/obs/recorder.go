package obs

import (
	"encoding/json"
	"log/slog"
	"net/http"
	"sync"
	"time"
)

// QueryRecord is one completed query in the flight recorder.
type QueryRecord struct {
	Query      string        `json:"query"`
	Start      time.Time     `json:"start"`
	Duration   time.Duration `json:"-"`
	DurationMs float64       `json:"durationMs"`
	Rows       int           `json:"rows"`
	Streamed   bool          `json:"streamed,omitempty"`
	CacheHit   bool          `json:"cacheHit,omitempty"`
	Err        string        `json:"error,omitempty"`
	Slow       bool          `json:"slow,omitempty"`
	Trace      *SpanData     `json:"trace,omitempty"`
}

// Recorder keeps a bounded ring of the last N completed queries and
// logs the ones over the slow threshold. Safe for concurrent use.
type Recorder struct {
	mu    sync.Mutex
	ring  []QueryRecord
	next  int
	total int

	slow   time.Duration // 0 disables the slow-query log
	logger *slog.Logger
}

// NewRecorder builds a recorder holding the last size queries; queries
// slower than slow are logged through logger (nil logger = slog.Default,
// slow <= 0 disables the slow-query log).
func NewRecorder(size int, slow time.Duration, logger *slog.Logger) *Recorder {
	if size <= 0 {
		size = 64
	}
	if logger == nil {
		logger = slog.Default()
	}
	return &Recorder{ring: make([]QueryRecord, 0, size), slow: slow, logger: logger}
}

// SlowThreshold returns the configured slow-query threshold.
func (r *Recorder) SlowThreshold() time.Duration {
	if r == nil {
		return 0
	}
	return r.slow
}

// Record adds one completed query. Nil-safe so callers can leave the
// recorder unconfigured.
func (r *Recorder) Record(rec QueryRecord) {
	if r == nil {
		return
	}
	rec.DurationMs = float64(rec.Duration) / float64(time.Millisecond)
	rec.Slow = r.slow > 0 && rec.Duration >= r.slow
	r.mu.Lock()
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, rec)
	} else {
		r.ring[r.next] = rec
	}
	r.next = (r.next + 1) % cap(r.ring)
	r.total++
	r.mu.Unlock()
	if rec.Slow {
		attrs := []any{
			slog.String("query", rec.Query),
			slog.Duration("duration", rec.Duration),
			slog.Duration("threshold", r.slow),
			slog.Int("rows", rec.Rows),
		}
		if rec.Trace != nil {
			attrs = append(attrs, slog.String("trace", rec.Trace.TraceID))
		}
		if rec.Err != "" {
			attrs = append(attrs, slog.String("error", rec.Err))
		}
		r.logger.Warn("slow query", attrs...)
	}
}

// Snapshot returns the recorded queries, most recent first, plus how
// many queries were recorded over the recorder's lifetime.
func (r *Recorder) Snapshot() (records []QueryRecord, total int) {
	if r == nil {
		return nil, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	records = make([]QueryRecord, 0, len(r.ring))
	for i := 0; i < len(r.ring); i++ {
		// Walk backwards from the most recently written slot.
		idx := (r.next - 1 - i + 2*cap(r.ring)) % cap(r.ring)
		if idx >= len(r.ring) {
			continue
		}
		records = append(records, r.ring[idx])
	}
	return records, r.total
}

// Handler serves GET /debug/queries: the flight-recorder snapshot as
// JSON, most recent query first.
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		records, total := r.Snapshot()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(struct {
			Total   int           `json:"totalRecorded"`
			SlowMs  float64       `json:"slowThresholdMs"`
			Queries []QueryRecord `json:"queries"`
		}{total, float64(r.SlowThreshold()) / float64(time.Millisecond), records})
	})
}
