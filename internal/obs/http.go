package obs

import (
	"log/slog"
	"net/http"
	"strconv"
	"time"
)

// respWriter wraps a ResponseWriter to inject trace headers at
// WriteHeader time — the last moment headers can still be set, and
// where elapsed server time is measured for ServerTimeHeader. It
// forwards Flush so NDJSON streaming through the middleware keeps
// working (server/stream.go type-asserts http.Flusher).
type respWriter struct {
	http.ResponseWriter
	span        *Span
	start       time.Time
	status      int
	wroteHeader bool
}

func (w *respWriter) WriteHeader(code int) {
	if !w.wroteHeader {
		w.wroteHeader = true
		w.status = code
		h := w.Header()
		h.Set(TraceHeader, w.span.TraceID())
		h.Set(SpanHeader, w.span.ID())
		h.Set(ServerTimeHeader, strconv.FormatInt(int64(time.Since(w.start)), 10))
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *respWriter) Write(p []byte) (int, error) {
	if !w.wroteHeader {
		w.WriteHeader(http.StatusOK)
	}
	return w.ResponseWriter.Write(p)
}

func (w *respWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Wrap instruments an HTTP handler with tracing and (optionally)
// structured request logging. Each request gets a root span named
// component + the route — joined to the caller's trace when the
// X-Tat-* request headers are present — carried in the request
// context, and echoed back via response headers with the server-side
// elapsed time so clients can split remote compute from wire RTT.
// Requests already carrying a context span (an in-process sub-mount)
// pass through untouched.
func Wrap(component string, h http.Handler, logger *slog.Logger) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if SpanFromContext(r.Context()) != nil {
			h.ServeHTTP(w, r)
			return
		}
		start := time.Now()
		span := JoinTrace(component+" "+r.Method+" "+r.URL.Path,
			r.Header.Get(TraceHeader), r.Header.Get(SpanHeader))
		rw := &respWriter{ResponseWriter: w, span: span, start: start, status: http.StatusOK}
		h.ServeHTTP(rw, r.WithContext(ContextWithSpan(r.Context(), span)))
		span.End()
		if logger != nil {
			logger.Info("request",
				slog.String("component", component),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", rw.status),
				slog.Duration("duration", span.Duration()),
				slog.String("trace", span.TraceID()),
			)
		}
	})
}
