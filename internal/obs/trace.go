// Package obs is TATOOINE's dependency-free observability layer:
// per-query span trees carried through context.Context (and across
// processes via X-Tat-* headers), an atomic counter/gauge/histogram
// registry rendered in Prometheus text format, and a flight recorder
// keeping the last N completed query traces with a slow-query log.
//
// The package depends only on the standard library, so every layer of
// the stack — pager, sources, federation, executors, server — can
// instrument itself without import cycles.
package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"sort"
	"strings"
	"sync"
	"time"
)

// Wire headers for cross-process trace propagation: a mediator stamps
// its outgoing federation calls with the query's trace and the calling
// span, and a federation endpoint (sourced, or another mediator) joins
// that trace so remote server-side time is attributed distinctly from
// wire RTT.
const (
	// TraceHeader carries the 16-hex-digit trace ID on requests (set by
	// clients) and responses (echoed by joined servers).
	TraceHeader = "X-Tat-Trace-Id"
	// SpanHeader carries the calling span's ID on requests — the remote
	// server's root span becomes its child — and the server-side root
	// span's ID on responses, so the client can attribute remote time.
	SpanHeader = "X-Tat-Span-Id"
	// ServerTimeHeader reports, on responses, the nanoseconds the
	// server spent before writing the response header. A client
	// subtracts it from its observed call duration to split remote
	// compute from wire RTT.
	ServerTimeHeader = "X-Tat-Server-Ns"
)

// DefaultMaxSpans bounds the spans one trace retains. Traces of large
// fan-out queries keep the first spans and count the rest as dropped,
// so tracing cost stays bounded no matter the probe count.
const DefaultMaxSpans = 512

// Trace collects the spans of one query (or one server request). All
// methods are safe for concurrent use — probe fan-out creates spans
// from many goroutines.
type Trace struct {
	id string

	mu      sync.Mutex
	spans   []*Span
	dropped int
	max     int
}

// Span is one timed operation inside a trace. The zero of the type is
// never used: a nil *Span is the universal no-op — every method is
// nil-safe, so call sites never guard on "is tracing on".
type Span struct {
	t      *Trace
	id     string
	parent string
	name   string
	start  time.Time

	// guarded by t.mu
	dur   time.Duration // 0 while open
	ended bool
	attrs map[string]string
}

func newID() string { return fmt.Sprintf("%016x", rand.Uint64()) }

// NewTrace starts a fresh trace and returns its root span.
func NewTrace(name string) *Span {
	return JoinTrace(name, newID(), "")
}

// JoinTrace starts a trace that continues a remote caller's: the root
// span carries the caller's trace ID and is parented under the caller's
// span, so a mediator's federation probe and the sourced handler that
// served it render as one tree.
func JoinTrace(name, traceID, parentSpanID string) *Span {
	if traceID == "" {
		traceID = newID()
	}
	t := &Trace{id: traceID, max: DefaultMaxSpans}
	s := &Span{t: t, id: newID(), parent: parentSpanID, name: name, start: time.Now()}
	t.spans = append(t.spans, s)
	return s
}

// TraceID returns the span's trace ID ("" on the nil no-op span).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.t.id
}

// ID returns the span's ID ("" on the nil no-op span).
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// StartChild opens a child span. On a nil receiver — or when the trace
// is at its span cap, which only counts the drop — it returns nil, the
// no-op span, so deep call chains need no tracing-enabled checks.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	t := s.t
	t.mu.Lock()
	if len(t.spans) >= t.max {
		t.dropped++
		t.mu.Unlock()
		return nil
	}
	c := &Span{t: t, id: newID(), parent: s.id, name: name, start: time.Now()}
	t.spans = append(t.spans, c)
	t.mu.Unlock()
	return c
}

// SetAttr attaches a key/value attribute to the span. Nil-safe.
func (s *Span) SetAttr(key, val string) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[key] = val
	s.t.mu.Unlock()
}

// End closes the span, fixing its duration. Idempotent and nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	s.t.mu.Unlock()
}

// Duration returns the span's duration — elapsed-so-far while open,
// zero on the nil span.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// SpanData is the serializable form of a span subtree — the "trace"
// block of a query response and the flight recorder's payload.
type SpanData struct {
	TraceID     string            `json:"traceId,omitempty"` // set on the subtree root only
	SpanID      string            `json:"spanId"`
	Parent      string            `json:"parent,omitempty"` // set on the root when it continues a remote span
	Name        string            `json:"name"`
	StartUnixNs int64             `json:"startUnixNs"`
	DurationNs  int64             `json:"durationNs"`
	Attrs       map[string]string `json:"attrs,omitempty"`
	Children    []*SpanData       `json:"children,omitempty"`
	Dropped     int               `json:"droppedSpans,omitempty"` // root only: spans over the trace cap
}

// Data assembles the subtree rooted at the span into its serializable
// form. Open spans report elapsed-so-far. Nil-safe (returns nil).
func (s *Span) Data() *SpanData {
	if s == nil {
		return nil
	}
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	byParent := make(map[string][]*Span, len(t.spans))
	for _, sp := range t.spans {
		byParent[sp.parent] = append(byParent[sp.parent], sp)
	}
	var build func(sp *Span) *SpanData
	build = func(sp *Span) *SpanData {
		dur := sp.dur
		if !sp.ended {
			dur = time.Since(sp.start)
		}
		d := &SpanData{
			SpanID:      sp.id,
			Name:        sp.name,
			StartUnixNs: sp.start.UnixNano(),
			DurationNs:  int64(dur),
		}
		if len(sp.attrs) > 0 {
			d.Attrs = make(map[string]string, len(sp.attrs))
			for k, v := range sp.attrs {
				d.Attrs[k] = v
			}
		}
		for _, c := range byParent[sp.id] {
			d.Children = append(d.Children, build(c))
		}
		return d
	}
	root := build(s)
	root.TraceID = t.id
	root.Parent = s.parent
	root.Dropped = t.dropped
	return root
}

// Spans returns how many spans the trace currently holds (the root
// included) and how many were dropped over the cap.
func (s *Span) Spans() (kept, dropped int) {
	if s == nil {
		return 0, 0
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	return len(s.t.spans), s.t.dropped
}

// Render formats the span tree for humans: one line per span, indented
// by depth, with durations and sorted attributes.
func (d *SpanData) Render() string {
	if d == nil {
		return ""
	}
	var b strings.Builder
	if d.TraceID != "" {
		fmt.Fprintf(&b, "trace %s\n", d.TraceID)
	}
	var walk func(n *SpanData, depth int)
	walk = func(n *SpanData, depth int) {
		fmt.Fprintf(&b, "%s%s  %s", strings.Repeat("  ", depth), n.Name,
			time.Duration(n.DurationNs).Round(time.Microsecond))
		if len(n.Attrs) > 0 {
			keys := make([]string, 0, len(n.Attrs))
			for k := range n.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&b, "  %s=%s", k, n.Attrs[k])
			}
		}
		if n.Dropped > 0 {
			fmt.Fprintf(&b, "  (+%d spans dropped)", n.Dropped)
		}
		b.WriteByte('\n')
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(d, 0)
	return b.String()
}

// JSON renders the span tree as indented JSON (for examples and CLI
// output); errors cannot occur on this shape.
func (d *SpanData) JSON() string {
	out, _ := json.MarshalIndent(d, "", "  ")
	return string(out)
}

// ---------- context plumbing ----------

type spanKey struct{}

// ContextWithSpan returns ctx carrying the span; retrieve it with
// SpanFromContext. A nil span returns ctx unchanged.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the span carried by ctx, or nil (the no-op
// span) when there is none.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan opens a child of the context's span and returns a context
// carrying the child. Without a span in ctx it is a no-op: the original
// context and the nil span come back.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	s := SpanFromContext(ctx).StartChild(name)
	if s == nil {
		return ctx, nil
	}
	return ContextWithSpan(ctx, s), s
}

// EnsureSpan is StartSpan for entry points: when ctx has no trace yet a
// fresh one is started (owned=true tells the caller it must End the
// span and owns the whole trace).
func EnsureSpan(ctx context.Context, name string) (_ context.Context, _ *Span, owned bool) {
	if parent := SpanFromContext(ctx); parent != nil {
		c, s := StartSpan(ctx, name)
		return c, s, false
	}
	s := NewTrace(name)
	return ContextWithSpan(ctx, s), s, true
}
