// Package store defines TATOOINE's pluggable storage abstraction: a
// Store is a set of named keyspaces (ordered key→value maps) with
// transactional commit, backed either by memory or by the paged
// on-disk B-tree engine (internal/pager + internal/btree).
//
// The layers above — rdf.Graph's SPO/POS/OSP indexes and dictionary,
// relstore.Table's rows and secondary indexes, core.Instance's durable
// catalog — talk only to this interface, so the hot probe paths are
// backend-agnostic: a cursor over a B-tree page and a cursor over an
// in-memory page behave identically, and everything written between
// two Commit calls becomes durable atomically (one WAL transaction).
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"tatooine/internal/btree"
	"tatooine/internal/pager"
)

// KV is one keyspace: an ordered map from byte keys to byte values.
// Implementations are safe for concurrent use; writers are serialized
// per keyspace.
type KV interface {
	// Get returns the value stored under key.
	Get(key []byte) ([]byte, bool, error)
	// Put stores value under key, reporting whether the key was new.
	Put(key, value []byte) (bool, error)
	// Delete removes key, reporting whether it was present.
	Delete(key []byte) (bool, error)
	// Scan calls fn for every pair whose key starts with prefix, in
	// ascending key order, until fn returns false.
	Scan(prefix []byte, fn func(key, value []byte) bool) error
	// ScanFrom calls fn for every pair with key >= start, in ascending
	// key order, until fn returns false. It enables seek-skip iteration
	// (jump past a whole key group without touching its members).
	ScanFrom(start []byte, fn func(key, value []byte) bool) error
	// Len returns the number of keys (O(1); maintained, not counted).
	Len() int
}

// Store is a collection of keyspaces with atomic durability.
type Store interface {
	// Keyspace returns the named keyspace, creating it if absent.
	Keyspace(name string) (KV, error)
	// DropKeyspace removes the keyspace from the directory and returns
	// every page it owned (tree nodes and overflow chains) to the
	// pager's free list, where later allocations reuse them. The caller
	// must guarantee no concurrent reader still iterates the keyspace:
	// its pages may be rewritten by the very next mutation.
	DropKeyspace(name string) error
	// Keyspaces lists the existing keyspace names, sorted.
	Keyspaces() []string
	// Commit makes every mutation since the last Commit durable as one
	// atomic transaction.
	Commit() error
	// Checkpoint folds the WAL into the database file (no-op in memory).
	Checkpoint() error
	// Vacuum rewrites every keyspace into freshly packed pages and
	// sweeps unreachable pages onto the free list, shrinking the pages
	// a fragmented store touches back toward its live payload. Writers
	// are excluded per keyspace while it is rewritten.
	Vacuum() error
	// Close checkpoints and releases the store. Uncommitted mutations
	// are discarded.
	Close() error
	// Persistent reports whether the store survives the process.
	Persistent() bool
	// Stats snapshots engine counters for the mediator's /stats.
	Stats() Stats
}

// Stats is the "store" block of the mediator's /stats.
type Stats struct {
	pager.Stats
	Keyspaces int `json:"keyspaces"`
	// LiveBytes sums the key+value payload live across all keyspaces —
	// the numerator of the fragmentation ratio that triggers
	// auto-vacuum (pages×PageSize being the denominator).
	LiveBytes int64 `json:"liveBytes"`
	// Vacuums counts completed Vacuum passes (manual and automatic).
	Vacuums int64 `json:"vacuums"`
}

// Options tune a store.
type Options struct {
	// Pager tunes the page cache and sync behavior.
	Pager pager.Options
	// AutoCheckpointBytes checkpoints the WAL when a Commit leaves it
	// larger than this. Zero means DefaultAutoCheckpointBytes; negative
	// disables auto-checkpointing.
	AutoCheckpointBytes int64
	// AutoVacuumRatio triggers a vacuum from Commit when live payload
	// falls below this fraction of the in-use (non-free) page bytes —
	// i.e. when most of the file is dead space from deletes and
	// dropped keyspaces. Zero means DefaultAutoVacuumRatio; negative
	// disables auto-vacuum. Stores smaller than minAutoVacuumPages are
	// never auto-vacuumed, and a vacuum re-arms only after the file
	// grows past its post-vacuum size again.
	AutoVacuumRatio float64
}

// DefaultAutoCheckpointBytes bounds WAL growth between automatic
// checkpoints: 8 MiB.
const DefaultAutoCheckpointBytes = 8 << 20

// DefaultAutoVacuumRatio is the live-payload fraction below which
// Commit triggers an automatic vacuum. The B-tree's structural
// overhead (cell headers, slot arrays, page slack) keeps healthy
// trees' ratios well above this, so only genuine garbage — deleted
// rows, dropped generations — trips it.
const DefaultAutoVacuumRatio = 0.10

// minAutoVacuumPages exempts small stores from auto-vacuum: below 256
// pages (1 MiB) fragmentation cannot matter.
const minAutoVacuumPages = 256

// catalogPage is the fixed page holding the keyspace directory.
const catalogPage pager.PageID = 1

// Mem returns an in-memory Store: the default backend. It implements
// the exact same interface and ordering semantics as the disk store
// (it runs the same B-tree over memory-resident pages), with Commit
// and Checkpoint as cheap no-ops.
func Mem() Store {
	s, err := open("", Options{})
	if err != nil {
		// The memory pager cannot fail to open.
		panic(fmt.Sprintf("store: memory open failed: %v", err))
	}
	return s
}

// Open opens (or creates) the persistent store rooted at the file
// path (conventionally <dir>/tatooine.db; the WAL lives next to it).
func Open(path string, opts Options) (Store, error) {
	if path == "" {
		return nil, fmt.Errorf("store: empty path (use Mem for the in-memory backend)")
	}
	return open(path, opts)
}

type diskStore struct {
	mu      sync.Mutex
	pg      *pager.Pager
	spaces  map[string]*keyspace
	opts    Options
	closed  bool
	vacuums int64
	// vacuumArmPages re-arms auto-vacuum: after a vacuum, Commit will
	// not trigger another until the file grows past this page count,
	// so a store whose ratio stays low from structural overhead alone
	// cannot thrash.
	vacuumArmPages int
}

type keyspace struct {
	mu    sync.RWMutex
	st    *diskStore
	name  string
	tree  *btree.BTree
	count int
}

func open(path string, opts Options) (*diskStore, error) {
	if opts.AutoCheckpointBytes == 0 {
		opts.AutoCheckpointBytes = DefaultAutoCheckpointBytes
	}
	pg, err := pager.Open(path, opts.Pager)
	if err != nil {
		return nil, err
	}
	s := &diskStore{pg: pg, spaces: make(map[string]*keyspace), opts: opts}
	if pg.PageCount() <= int(catalogPage) {
		// Fresh store: allocate the catalog page and persist the empty
		// directory so a reopened store always finds page 1.
		id, page, err := pg.Allocate()
		if err != nil {
			pg.Close()
			return nil, err
		}
		if id != catalogPage {
			pg.Close()
			return nil, fmt.Errorf("store: catalog landed on page %d, want %d", id, catalogPage)
		}
		writeCatalog(page, nil)
		if err := pg.Commit(); err != nil {
			pg.Close()
			return nil, err
		}
		return s, nil
	}
	page, err := pg.View(catalogPage)
	if err != nil {
		pg.Close()
		return nil, err
	}
	entries, err := readCatalog(page)
	if err != nil {
		pg.Close()
		return nil, err
	}
	for _, e := range entries {
		tree := btree.Open(pg, e.root)
		tree.SetLiveBytes(e.live)
		s.spaces[e.name] = &keyspace{
			st:    s,
			name:  e.name,
			tree:  tree,
			count: int(e.count),
		}
	}
	return s, nil
}

type catEntry struct {
	name  string
	root  pager.PageID
	count uint64
	live  int64
}

// Catalog layout on page 1: "TATD", n u16, then per entry
// [2 namelen][name][4 root][8 count][8 liveBytes]. The previous
// format ("TATC") lacked liveBytes; readCatalog still accepts it so
// PR-8-era files open, with live bytes rebuilt as zero (a vacuum
// restores accurate counters).
func writeCatalog(page []byte, entries []catEntry) {
	copy(page[0:4], "TATD")
	binary.BigEndian.PutUint16(page[4:], uint16(len(entries)))
	off := 6
	for _, e := range entries {
		binary.BigEndian.PutUint16(page[off:], uint16(len(e.name)))
		off += 2
		copy(page[off:], e.name)
		off += len(e.name)
		binary.BigEndian.PutUint32(page[off:], uint32(e.root))
		off += 4
		binary.BigEndian.PutUint64(page[off:], e.count)
		off += 8
		binary.BigEndian.PutUint64(page[off:], uint64(e.live))
		off += 8
	}
	for i := off; i < len(page); i++ {
		page[i] = 0
	}
}

func readCatalog(page []byte) ([]catEntry, error) {
	magic := string(page[0:4])
	if magic != "TATD" && magic != "TATC" {
		return nil, fmt.Errorf("store: corrupt keyspace catalog")
	}
	n := int(binary.BigEndian.Uint16(page[4:]))
	out := make([]catEntry, 0, n)
	off := 6
	for i := 0; i < n; i++ {
		nl := int(binary.BigEndian.Uint16(page[off:]))
		off += 2
		name := string(page[off : off+nl])
		off += nl
		root := pager.PageID(binary.BigEndian.Uint32(page[off:]))
		off += 4
		count := binary.BigEndian.Uint64(page[off:])
		off += 8
		var live int64
		if magic == "TATD" {
			live = int64(binary.BigEndian.Uint64(page[off:]))
			off += 8
		}
		out = append(out, catEntry{name: name, root: root, count: count, live: live})
	}
	return out, nil
}

func (s *diskStore) catalogEntries() []catEntry {
	names := make([]string, 0, len(s.spaces))
	for n := range s.spaces {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]catEntry, 0, len(names))
	for _, n := range names {
		ks := s.spaces[n]
		ks.mu.RLock()
		count := ks.count
		live := ks.tree.LiveBytes()
		root := ks.tree.Root()
		ks.mu.RUnlock()
		out = append(out, catEntry{name: n, root: root, count: uint64(count), live: live})
	}
	return out
}

// catalogCapacity guards the single-page directory: each entry costs
// 22+len(name) bytes after the 6-byte header.
func catalogFits(entries []catEntry) bool {
	size := 6
	for _, e := range entries {
		size += 22 + len(e.name)
	}
	return size <= pager.PageSize
}

func (s *diskStore) Keyspace(name string) (KV, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ks, ok := s.spaces[name]; ok {
		return ks, nil
	}
	tree, err := btree.New(s.pg)
	if err != nil {
		return nil, err
	}
	ks := &keyspace{st: s, name: name, tree: tree}
	s.spaces[name] = ks
	if !catalogFits(s.catalogEntries()) {
		delete(s.spaces, name)
		return nil, fmt.Errorf("store: keyspace directory full (cannot add %q)", name)
	}
	return ks, nil
}

func (s *diskStore) DropKeyspace(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ks, ok := s.spaces[name]
	if !ok {
		return nil
	}
	delete(s.spaces, name)
	ks.mu.Lock()
	defer ks.mu.Unlock()
	pages, err := ks.tree.Pages()
	if err != nil {
		return err
	}
	for _, id := range pages {
		if err := s.pg.Free(id); err != nil {
			return err
		}
	}
	return nil
}

func (s *diskStore) Keyspaces() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.spaces))
	for n := range s.spaces {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (s *diskStore) Commit() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.commitLocked(); err != nil {
		return err
	}
	if s.shouldAutoVacuumLocked() {
		if err := s.vacuumLocked(); err != nil {
			return err
		}
	}
	if s.opts.AutoCheckpointBytes > 0 && s.pg.WALSize() > s.opts.AutoCheckpointBytes {
		return s.pg.Checkpoint()
	}
	return nil
}

// commitLocked persists the catalog and commits the pager transaction.
func (s *diskStore) commitLocked() error {
	page, err := s.pg.Mut(catalogPage)
	if err != nil {
		return err
	}
	writeCatalog(page, s.catalogEntries())
	return s.pg.Commit()
}

func (s *diskStore) liveBytesLocked() int64 {
	var live int64
	for _, ks := range s.spaces {
		ks.mu.RLock()
		live += ks.tree.LiveBytes()
		ks.mu.RUnlock()
	}
	return live
}

func (s *diskStore) shouldAutoVacuumLocked() bool {
	ratio := s.opts.AutoVacuumRatio
	if ratio == 0 {
		ratio = DefaultAutoVacuumRatio
	}
	if ratio < 0 {
		return false
	}
	st := s.pg.Stats()
	if st.Pages < minAutoVacuumPages || st.Pages <= s.vacuumArmPages {
		return false
	}
	used := int64(st.Pages-st.FreePages) * pager.PageSize
	return float64(s.liveBytesLocked()) < float64(used)*ratio
}

func (s *diskStore) Vacuum() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.vacuumLocked()
}

// vacuumLocked rewrites every keyspace into freshly packed pages, then
// mark-sweeps: any allocated page reachable from neither the catalog,
// a keyspace tree, nor the free list is garbage (including pages
// leaked by a crash mid-vacuum) and goes onto the free list. Each
// keyspace commits separately so the dirty set stays bounded by the
// largest keyspace, not the whole store; a crash between those commits
// leaks the in-flight rewrite's pages, which the next completed vacuum
// reclaims.
func (s *diskStore) vacuumLocked() error {
	names := make([]string, 0, len(s.spaces))
	for n := range s.spaces {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		ks := s.spaces[n]
		ks.mu.Lock()
		err := s.rewriteKeyspace(ks)
		ks.mu.Unlock()
		if err != nil {
			return err
		}
		if err := s.commitLocked(); err != nil {
			return err
		}
	}
	if err := s.sweepLocked(); err != nil {
		return err
	}
	if err := s.commitLocked(); err != nil {
		return err
	}
	s.vacuums++
	storeVacuumTotal.Inc()
	s.vacuumArmPages = s.pg.PageCount() + s.pg.PageCount()/4
	return nil
}

// rewriteKeyspace copies ks's live entries into a new tree and frees
// the old tree's pages. Caller holds ks.mu (writers and readers are
// out) and s.mu.
func (s *diskStore) rewriteKeyspace(ks *keyspace) error {
	old := ks.tree
	oldPages, err := old.Pages()
	if err != nil {
		return err
	}
	nt, err := btree.New(s.pg)
	if err != nil {
		return err
	}
	c := old.NewCursor()
	for c.Seek(nil); c.Valid(); c.Next() {
		if _, err := nt.Insert(c.Key(), c.Value()); err != nil {
			return err
		}
	}
	if err := c.Err(); err != nil {
		return err
	}
	for _, id := range oldPages {
		if err := s.pg.Free(id); err != nil {
			return err
		}
	}
	ks.tree = nt
	return nil
}

// sweepLocked frees every allocated page that is not the header, the
// catalog, part of a keyspace tree, or already on the free list.
func (s *diskStore) sweepLocked() error {
	n := s.pg.PageCount()
	reach := make([]bool, n)
	reach[0] = true
	if int(catalogPage) < n {
		reach[catalogPage] = true
	}
	for _, ks := range s.spaces {
		ks.mu.RLock()
		pages, err := ks.tree.Pages()
		ks.mu.RUnlock()
		if err != nil {
			return err
		}
		for _, id := range pages {
			if int(id) < n {
				reach[id] = true
			}
		}
	}
	free, err := s.pg.FreePages()
	if err != nil {
		return err
	}
	for _, id := range free {
		if int(id) < n {
			reach[id] = true
		}
	}
	for id := 2; id < n; id++ {
		if reach[id] {
			continue
		}
		if err := s.pg.Free(pager.PageID(id)); err != nil {
			return err
		}
	}
	return nil
}

func (s *diskStore) Checkpoint() error { return s.pg.Checkpoint() }

func (s *diskStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.pg.Close()
}

func (s *diskStore) Persistent() bool { return !s.pg.Mem() }

func (s *diskStore) Stats() Stats {
	s.mu.Lock()
	n := len(s.spaces)
	live := s.liveBytesLocked()
	vacs := s.vacuums
	s.mu.Unlock()
	return Stats{Stats: s.pg.Stats(), Keyspaces: n, LiveBytes: live, Vacuums: vacs}
}

// clampKey bounds keys to the B-tree's limit: longer keys keep their
// prefix and replace the tail with a SHA-256 digest. Equality lookups
// stay exact (the mapping is deterministic) and prefix scans with
// prefixes shorter than the preserved prefix still work; only the
// relative order of clamped keys past that point is scrambled.
func clampKey(key []byte) []byte {
	if len(key) <= btree.MaxKey {
		return key
	}
	sum := sha256.Sum256(key)
	out := make([]byte, 0, btree.MaxKey)
	out = append(out, key[:btree.MaxKey-len(sum)]...)
	return append(out, sum[:]...)
}

func (ks *keyspace) Get(key []byte) ([]byte, bool, error) {
	ks.mu.RLock()
	defer ks.mu.RUnlock()
	return ks.tree.Get(clampKey(key))
}

func (ks *keyspace) Put(key, value []byte) (bool, error) {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	fresh, err := ks.tree.Insert(clampKey(key), value)
	if err != nil {
		return false, err
	}
	if fresh {
		ks.count++
	}
	return fresh, nil
}

func (ks *keyspace) Delete(key []byte) (bool, error) {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	deleted, err := ks.tree.Delete(clampKey(key))
	if err != nil {
		return false, err
	}
	if deleted {
		ks.count--
	}
	return deleted, nil
}

func (ks *keyspace) Scan(prefix []byte, fn func(key, value []byte) bool) error {
	ks.mu.RLock()
	defer ks.mu.RUnlock()
	c := ks.tree.NewCursor()
	for c.Seek(prefix); c.Valid(); c.Next() {
		k := c.Key()
		if !hasPrefix(k, prefix) {
			break
		}
		if !fn(k, c.Value()) {
			break
		}
	}
	return c.Err()
}

func (ks *keyspace) ScanFrom(start []byte, fn func(key, value []byte) bool) error {
	ks.mu.RLock()
	defer ks.mu.RUnlock()
	c := ks.tree.NewCursor()
	for c.Seek(start); c.Valid(); c.Next() {
		if !fn(c.Key(), c.Value()) {
			break
		}
	}
	return c.Err()
}

func (ks *keyspace) Len() int {
	ks.mu.RLock()
	defer ks.mu.RUnlock()
	return ks.count
}

func hasPrefix(k, prefix []byte) bool {
	if len(prefix) == 0 {
		return true
	}
	if len(k) < len(prefix) {
		return false
	}
	for i := range prefix {
		if k[i] != prefix[i] {
			return false
		}
	}
	return true
}
