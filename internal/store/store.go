// Package store defines TATOOINE's pluggable storage abstraction: a
// Store is a set of named keyspaces (ordered key→value maps) with
// transactional commit, backed either by memory or by the paged
// on-disk B-tree engine (internal/pager + internal/btree).
//
// The layers above — rdf.Graph's SPO/POS/OSP indexes and dictionary,
// relstore.Table's rows and secondary indexes, core.Instance's durable
// catalog — talk only to this interface, so the hot probe paths are
// backend-agnostic: a cursor over a B-tree page and a cursor over an
// in-memory page behave identically, and everything written between
// two Commit calls becomes durable atomically (one WAL transaction).
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"tatooine/internal/btree"
	"tatooine/internal/pager"
)

// KV is one keyspace: an ordered map from byte keys to byte values.
// Implementations are safe for concurrent use; writers are serialized
// per keyspace.
type KV interface {
	// Get returns the value stored under key.
	Get(key []byte) ([]byte, bool, error)
	// Put stores value under key, reporting whether the key was new.
	Put(key, value []byte) (bool, error)
	// Delete removes key, reporting whether it was present.
	Delete(key []byte) (bool, error)
	// Scan calls fn for every pair whose key starts with prefix, in
	// ascending key order, until fn returns false.
	Scan(prefix []byte, fn func(key, value []byte) bool) error
	// ScanFrom calls fn for every pair with key >= start, in ascending
	// key order, until fn returns false. It enables seek-skip iteration
	// (jump past a whole key group without touching its members).
	ScanFrom(start []byte, fn func(key, value []byte) bool) error
	// Len returns the number of keys (O(1); maintained, not counted).
	Len() int
}

// Store is a collection of keyspaces with atomic durability.
type Store interface {
	// Keyspace returns the named keyspace, creating it if absent.
	Keyspace(name string) (KV, error)
	// DropKeyspace removes the keyspace from the directory. Its pages
	// are not reclaimed (the engine has no free list), but the name can
	// be reused with fresh content.
	DropKeyspace(name string) error
	// Keyspaces lists the existing keyspace names, sorted.
	Keyspaces() []string
	// Commit makes every mutation since the last Commit durable as one
	// atomic transaction.
	Commit() error
	// Checkpoint folds the WAL into the database file (no-op in memory).
	Checkpoint() error
	// Close checkpoints and releases the store. Uncommitted mutations
	// are discarded.
	Close() error
	// Persistent reports whether the store survives the process.
	Persistent() bool
	// Stats snapshots engine counters for the mediator's /stats.
	Stats() Stats
}

// Stats is the "store" block of the mediator's /stats.
type Stats struct {
	pager.Stats
	Keyspaces int `json:"keyspaces"`
}

// Options tune a store.
type Options struct {
	// Pager tunes the page cache and sync behavior.
	Pager pager.Options
	// AutoCheckpointBytes checkpoints the WAL when a Commit leaves it
	// larger than this. Zero means DefaultAutoCheckpointBytes; negative
	// disables auto-checkpointing.
	AutoCheckpointBytes int64
}

// DefaultAutoCheckpointBytes bounds WAL growth between automatic
// checkpoints: 8 MiB.
const DefaultAutoCheckpointBytes = 8 << 20

// catalogPage is the fixed page holding the keyspace directory.
const catalogPage pager.PageID = 1

// Mem returns an in-memory Store: the default backend. It implements
// the exact same interface and ordering semantics as the disk store
// (it runs the same B-tree over memory-resident pages), with Commit
// and Checkpoint as cheap no-ops.
func Mem() Store {
	s, err := open("", Options{})
	if err != nil {
		// The memory pager cannot fail to open.
		panic(fmt.Sprintf("store: memory open failed: %v", err))
	}
	return s
}

// Open opens (or creates) the persistent store rooted at the file
// path (conventionally <dir>/tatooine.db; the WAL lives next to it).
func Open(path string, opts Options) (Store, error) {
	if path == "" {
		return nil, fmt.Errorf("store: empty path (use Mem for the in-memory backend)")
	}
	return open(path, opts)
}

type diskStore struct {
	mu     sync.Mutex
	pg     *pager.Pager
	spaces map[string]*keyspace
	opts   Options
	closed bool
}

type keyspace struct {
	mu    sync.RWMutex
	st    *diskStore
	name  string
	tree  *btree.BTree
	count int
}

func open(path string, opts Options) (*diskStore, error) {
	if opts.AutoCheckpointBytes == 0 {
		opts.AutoCheckpointBytes = DefaultAutoCheckpointBytes
	}
	pg, err := pager.Open(path, opts.Pager)
	if err != nil {
		return nil, err
	}
	s := &diskStore{pg: pg, spaces: make(map[string]*keyspace), opts: opts}
	if pg.PageCount() <= int(catalogPage) {
		// Fresh store: allocate the catalog page and persist the empty
		// directory so a reopened store always finds page 1.
		id, page, err := pg.Allocate()
		if err != nil {
			pg.Close()
			return nil, err
		}
		if id != catalogPage {
			pg.Close()
			return nil, fmt.Errorf("store: catalog landed on page %d, want %d", id, catalogPage)
		}
		writeCatalog(page, nil)
		if err := pg.Commit(); err != nil {
			pg.Close()
			return nil, err
		}
		return s, nil
	}
	page, err := pg.View(catalogPage)
	if err != nil {
		pg.Close()
		return nil, err
	}
	entries, err := readCatalog(page)
	if err != nil {
		pg.Close()
		return nil, err
	}
	for _, e := range entries {
		s.spaces[e.name] = &keyspace{
			st:    s,
			name:  e.name,
			tree:  btree.Open(pg, e.root),
			count: int(e.count),
		}
	}
	return s, nil
}

type catEntry struct {
	name  string
	root  pager.PageID
	count uint64
}

// Catalog layout on page 1: "TATC", n u16, then per entry
// [2 namelen][name][4 root][8 count].
func writeCatalog(page []byte, entries []catEntry) {
	copy(page[0:4], "TATC")
	binary.BigEndian.PutUint16(page[4:], uint16(len(entries)))
	off := 6
	for _, e := range entries {
		binary.BigEndian.PutUint16(page[off:], uint16(len(e.name)))
		off += 2
		copy(page[off:], e.name)
		off += len(e.name)
		binary.BigEndian.PutUint32(page[off:], uint32(e.root))
		off += 4
		binary.BigEndian.PutUint64(page[off:], e.count)
		off += 8
	}
	for i := off; i < len(page); i++ {
		page[i] = 0
	}
}

func readCatalog(page []byte) ([]catEntry, error) {
	if string(page[0:4]) != "TATC" {
		return nil, fmt.Errorf("store: corrupt keyspace catalog")
	}
	n := int(binary.BigEndian.Uint16(page[4:]))
	out := make([]catEntry, 0, n)
	off := 6
	for i := 0; i < n; i++ {
		nl := int(binary.BigEndian.Uint16(page[off:]))
		off += 2
		name := string(page[off : off+nl])
		off += nl
		root := pager.PageID(binary.BigEndian.Uint32(page[off:]))
		off += 4
		count := binary.BigEndian.Uint64(page[off:])
		off += 8
		out = append(out, catEntry{name: name, root: root, count: count})
	}
	return out, nil
}

func (s *diskStore) catalogEntries() []catEntry {
	names := make([]string, 0, len(s.spaces))
	for n := range s.spaces {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]catEntry, 0, len(names))
	for _, n := range names {
		ks := s.spaces[n]
		ks.mu.RLock()
		count := ks.count
		ks.mu.RUnlock()
		out = append(out, catEntry{name: n, root: ks.tree.Root(), count: uint64(count)})
	}
	return out
}

// catalogCapacity guards the single-page directory: each entry costs
// 14+len(name) bytes after the 6-byte header.
func catalogFits(entries []catEntry) bool {
	size := 6
	for _, e := range entries {
		size += 14 + len(e.name)
	}
	return size <= pager.PageSize
}

func (s *diskStore) Keyspace(name string) (KV, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ks, ok := s.spaces[name]; ok {
		return ks, nil
	}
	tree, err := btree.New(s.pg)
	if err != nil {
		return nil, err
	}
	ks := &keyspace{st: s, name: name, tree: tree}
	s.spaces[name] = ks
	if !catalogFits(s.catalogEntries()) {
		delete(s.spaces, name)
		return nil, fmt.Errorf("store: keyspace directory full (cannot add %q)", name)
	}
	return ks, nil
}

func (s *diskStore) DropKeyspace(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.spaces, name)
	return nil
}

func (s *diskStore) Keyspaces() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.spaces))
	for n := range s.spaces {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (s *diskStore) Commit() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	page, err := s.pg.Mut(catalogPage)
	if err != nil {
		return err
	}
	writeCatalog(page, s.catalogEntries())
	if err := s.pg.Commit(); err != nil {
		return err
	}
	if s.opts.AutoCheckpointBytes > 0 && s.pg.WALSize() > s.opts.AutoCheckpointBytes {
		return s.pg.Checkpoint()
	}
	return nil
}

func (s *diskStore) Checkpoint() error { return s.pg.Checkpoint() }

func (s *diskStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.pg.Close()
}

func (s *diskStore) Persistent() bool { return !s.pg.Mem() }

func (s *diskStore) Stats() Stats {
	s.mu.Lock()
	n := len(s.spaces)
	s.mu.Unlock()
	return Stats{Stats: s.pg.Stats(), Keyspaces: n}
}

// clampKey bounds keys to the B-tree's limit: longer keys keep their
// prefix and replace the tail with a SHA-256 digest. Equality lookups
// stay exact (the mapping is deterministic) and prefix scans with
// prefixes shorter than the preserved prefix still work; only the
// relative order of clamped keys past that point is scrambled.
func clampKey(key []byte) []byte {
	if len(key) <= btree.MaxKey {
		return key
	}
	sum := sha256.Sum256(key)
	out := make([]byte, 0, btree.MaxKey)
	out = append(out, key[:btree.MaxKey-len(sum)]...)
	return append(out, sum[:]...)
}

func (ks *keyspace) Get(key []byte) ([]byte, bool, error) {
	ks.mu.RLock()
	defer ks.mu.RUnlock()
	return ks.tree.Get(clampKey(key))
}

func (ks *keyspace) Put(key, value []byte) (bool, error) {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	fresh, err := ks.tree.Insert(clampKey(key), value)
	if err != nil {
		return false, err
	}
	if fresh {
		ks.count++
	}
	return fresh, nil
}

func (ks *keyspace) Delete(key []byte) (bool, error) {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	deleted, err := ks.tree.Delete(clampKey(key))
	if err != nil {
		return false, err
	}
	if deleted {
		ks.count--
	}
	return deleted, nil
}

func (ks *keyspace) Scan(prefix []byte, fn func(key, value []byte) bool) error {
	ks.mu.RLock()
	defer ks.mu.RUnlock()
	c := ks.tree.NewCursor()
	for c.Seek(prefix); c.Valid(); c.Next() {
		k := c.Key()
		if !hasPrefix(k, prefix) {
			break
		}
		if !fn(k, c.Value()) {
			break
		}
	}
	return c.Err()
}

func (ks *keyspace) ScanFrom(start []byte, fn func(key, value []byte) bool) error {
	ks.mu.RLock()
	defer ks.mu.RUnlock()
	c := ks.tree.NewCursor()
	for c.Seek(start); c.Valid(); c.Next() {
		if !fn(c.Key(), c.Value()) {
			break
		}
	}
	return c.Err()
}

func (ks *keyspace) Len() int {
	ks.mu.RLock()
	defer ks.mu.RUnlock()
	return ks.count
}

func hasPrefix(k, prefix []byte) bool {
	if len(prefix) == 0 {
		return true
	}
	if len(k) < len(prefix) {
		return false
	}
	for i := range prefix {
		if k[i] != prefix[i] {
			return false
		}
	}
	return true
}
