package store

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"
)

// runBoth runs a subtest against the memory backend and the disk
// backend, so every KV behavior is pinned backend-agnostically.
func runBoth(t *testing.T, fn func(t *testing.T, st Store)) {
	t.Helper()
	t.Run("mem", func(t *testing.T) {
		st := Mem()
		defer st.Close()
		fn(t, st)
	})
	t.Run("disk", func(t *testing.T) {
		st, err := Open(filepath.Join(t.TempDir(), "s.db"), Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		fn(t, st)
	})
}

func TestKVBasics(t *testing.T) {
	runBoth(t, func(t *testing.T, st Store) {
		kv, err := st.Keyspace("k")
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := kv.Put([]byte("a"), []byte("1"))
		if err != nil || !fresh {
			t.Fatalf("put: fresh=%v err=%v", fresh, err)
		}
		if fresh, _ := kv.Put([]byte("a"), []byte("2")); fresh {
			t.Fatal("overwrite reported fresh")
		}
		v, ok, err := kv.Get([]byte("a"))
		if err != nil || !ok || string(v) != "2" {
			t.Fatalf("get = %q,%v,%v", v, ok, err)
		}
		if kv.Len() != 1 {
			t.Fatalf("len = %d", kv.Len())
		}
		if del, _ := kv.Delete([]byte("a")); !del {
			t.Fatal("delete missed")
		}
		if kv.Len() != 0 {
			t.Fatalf("len after delete = %d", kv.Len())
		}
	})
}

func TestScanOrderAndPrefix(t *testing.T) {
	runBoth(t, func(t *testing.T, st Store) {
		kv, _ := st.Keyspace("k")
		for _, k := range []string{"b/2", "a/1", "b/1", "c/1", "a/2", "b/3"} {
			if _, err := kv.Put([]byte(k), []byte("v"+k)); err != nil {
				t.Fatal(err)
			}
		}
		var got []string
		if err := kv.Scan([]byte("b/"), func(k, v []byte) bool {
			got = append(got, string(k))
			return true
		}); err != nil {
			t.Fatal(err)
		}
		want := []string{"b/1", "b/2", "b/3"}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("prefix scan = %v, want %v", got, want)
		}
		// ScanFrom with seek-skip: jump straight past the b-group.
		var first string
		if err := kv.ScanFrom([]byte("b/\xff"), func(k, v []byte) bool {
			first = string(k)
			return false
		}); err != nil {
			t.Fatal(err)
		}
		if first != "c/1" {
			t.Fatalf("seek-skip landed on %q, want c/1", first)
		}
	})
}

func TestLongKeysClamped(t *testing.T) {
	runBoth(t, func(t *testing.T, st Store) {
		kv, _ := st.Keyspace("k")
		long1 := append(bytes.Repeat([]byte("x"), 5000), '1')
		long2 := append(bytes.Repeat([]byte("x"), 5000), '2')
		if _, err := kv.Put(long1, []byte("one")); err != nil {
			t.Fatal(err)
		}
		if _, err := kv.Put(long2, []byte("two")); err != nil {
			t.Fatal(err)
		}
		v, ok, err := kv.Get(long1)
		if err != nil || !ok || string(v) != "one" {
			t.Fatalf("long key 1 = %q,%v,%v", v, ok, err)
		}
		v, _, _ = kv.Get(long2)
		if string(v) != "two" {
			t.Fatalf("long key 2 = %q (clamping must stay injective per key)", v)
		}
	})
}

func TestKeyspacesIndependent(t *testing.T) {
	runBoth(t, func(t *testing.T, st Store) {
		a, _ := st.Keyspace("a")
		b, _ := st.Keyspace("b")
		a.Put([]byte("k"), []byte("va"))
		b.Put([]byte("k"), []byte("vb"))
		v, _, _ := a.Get([]byte("k"))
		if string(v) != "va" {
			t.Fatalf("keyspace a = %q", v)
		}
		v, _, _ = b.Get([]byte("k"))
		if string(v) != "vb" {
			t.Fatalf("keyspace b = %q", v)
		}
		names := st.Keyspaces()
		if fmt.Sprint(names) != "[a b]" {
			t.Fatalf("keyspaces = %v", names)
		}
	})
}

func TestPersistAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.db")
	st, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	kv, _ := st.Keyspace("data")
	for i := 0; i < 1000; i++ {
		kv.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	kv2, _ := st2.Keyspace("data")
	if kv2.Len() != 1000 {
		t.Fatalf("reopened len = %d, want 1000", kv2.Len())
	}
	v, ok, err := kv2.Get([]byte("k0500"))
	if err != nil || !ok || string(v) != "v500" {
		t.Fatalf("reopened get = %q,%v,%v", v, ok, err)
	}
}

func TestUncommittedLostOnReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.db")
	st, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	kv, _ := st.Keyspace("data")
	kv.Put([]byte("committed"), []byte("yes"))
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	kv.Put([]byte("uncommitted"), []byte("no"))
	// Crash: reopen without Commit/Close.
	st2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	kv2, _ := st2.Keyspace("data")
	if _, ok, _ := kv2.Get([]byte("committed")); !ok {
		t.Fatal("committed key lost")
	}
	if _, ok, _ := kv2.Get([]byte("uncommitted")); ok {
		t.Fatal("uncommitted key survived the crash")
	}
	if kv2.Len() != 1 {
		t.Fatalf("len = %d, want 1", kv2.Len())
	}
}
