package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
)

// runBoth runs a subtest against the memory backend and the disk
// backend, so every KV behavior is pinned backend-agnostically.
func runBoth(t *testing.T, fn func(t *testing.T, st Store)) {
	t.Helper()
	t.Run("mem", func(t *testing.T) {
		st := Mem()
		defer st.Close()
		fn(t, st)
	})
	t.Run("disk", func(t *testing.T) {
		st, err := Open(filepath.Join(t.TempDir(), "s.db"), Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		fn(t, st)
	})
}

func TestKVBasics(t *testing.T) {
	runBoth(t, func(t *testing.T, st Store) {
		kv, err := st.Keyspace("k")
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := kv.Put([]byte("a"), []byte("1"))
		if err != nil || !fresh {
			t.Fatalf("put: fresh=%v err=%v", fresh, err)
		}
		if fresh, _ := kv.Put([]byte("a"), []byte("2")); fresh {
			t.Fatal("overwrite reported fresh")
		}
		v, ok, err := kv.Get([]byte("a"))
		if err != nil || !ok || string(v) != "2" {
			t.Fatalf("get = %q,%v,%v", v, ok, err)
		}
		if kv.Len() != 1 {
			t.Fatalf("len = %d", kv.Len())
		}
		if del, _ := kv.Delete([]byte("a")); !del {
			t.Fatal("delete missed")
		}
		if kv.Len() != 0 {
			t.Fatalf("len after delete = %d", kv.Len())
		}
	})
}

func TestScanOrderAndPrefix(t *testing.T) {
	runBoth(t, func(t *testing.T, st Store) {
		kv, _ := st.Keyspace("k")
		for _, k := range []string{"b/2", "a/1", "b/1", "c/1", "a/2", "b/3"} {
			if _, err := kv.Put([]byte(k), []byte("v"+k)); err != nil {
				t.Fatal(err)
			}
		}
		var got []string
		if err := kv.Scan([]byte("b/"), func(k, v []byte) bool {
			got = append(got, string(k))
			return true
		}); err != nil {
			t.Fatal(err)
		}
		want := []string{"b/1", "b/2", "b/3"}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("prefix scan = %v, want %v", got, want)
		}
		// ScanFrom with seek-skip: jump straight past the b-group.
		var first string
		if err := kv.ScanFrom([]byte("b/\xff"), func(k, v []byte) bool {
			first = string(k)
			return false
		}); err != nil {
			t.Fatal(err)
		}
		if first != "c/1" {
			t.Fatalf("seek-skip landed on %q, want c/1", first)
		}
	})
}

func TestLongKeysClamped(t *testing.T) {
	runBoth(t, func(t *testing.T, st Store) {
		kv, _ := st.Keyspace("k")
		long1 := append(bytes.Repeat([]byte("x"), 5000), '1')
		long2 := append(bytes.Repeat([]byte("x"), 5000), '2')
		if _, err := kv.Put(long1, []byte("one")); err != nil {
			t.Fatal(err)
		}
		if _, err := kv.Put(long2, []byte("two")); err != nil {
			t.Fatal(err)
		}
		v, ok, err := kv.Get(long1)
		if err != nil || !ok || string(v) != "one" {
			t.Fatalf("long key 1 = %q,%v,%v", v, ok, err)
		}
		v, _, _ = kv.Get(long2)
		if string(v) != "two" {
			t.Fatalf("long key 2 = %q (clamping must stay injective per key)", v)
		}
	})
}

func TestKeyspacesIndependent(t *testing.T) {
	runBoth(t, func(t *testing.T, st Store) {
		a, _ := st.Keyspace("a")
		b, _ := st.Keyspace("b")
		a.Put([]byte("k"), []byte("va"))
		b.Put([]byte("k"), []byte("vb"))
		v, _, _ := a.Get([]byte("k"))
		if string(v) != "va" {
			t.Fatalf("keyspace a = %q", v)
		}
		v, _, _ = b.Get([]byte("k"))
		if string(v) != "vb" {
			t.Fatalf("keyspace b = %q", v)
		}
		names := st.Keyspaces()
		if fmt.Sprint(names) != "[a b]" {
			t.Fatalf("keyspaces = %v", names)
		}
	})
}

func TestPersistAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.db")
	st, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	kv, _ := st.Keyspace("data")
	for i := 0; i < 1000; i++ {
		kv.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	kv2, _ := st2.Keyspace("data")
	if kv2.Len() != 1000 {
		t.Fatalf("reopened len = %d, want 1000", kv2.Len())
	}
	v, ok, err := kv2.Get([]byte("k0500"))
	if err != nil || !ok || string(v) != "v500" {
		t.Fatalf("reopened get = %q,%v,%v", v, ok, err)
	}
}

func TestUncommittedLostOnReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.db")
	st, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	kv, _ := st.Keyspace("data")
	kv.Put([]byte("committed"), []byte("yes"))
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	kv.Put([]byte("uncommitted"), []byte("no"))
	// Crash: reopen without Commit/Close.
	st2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	kv2, _ := st2.Keyspace("data")
	if _, ok, _ := kv2.Get([]byte("committed")); !ok {
		t.Fatal("committed key lost")
	}
	if _, ok, _ := kv2.Get([]byte("uncommitted")); ok {
		t.Fatal("uncommitted key survived the crash")
	}
	if kv2.Len() != 1 {
		t.Fatalf("len = %d, want 1", kv2.Len())
	}
}

func TestDropKeyspaceReclaimsPages(t *testing.T) {
	st, err := Open(filepath.Join(t.TempDir(), "s.db"), Options{AutoVacuumRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	kv, _ := st.Keyspace("big")
	val := bytes.Repeat([]byte("v"), 512)
	for i := 0; i < 2000; i++ {
		if _, err := kv.Put([]byte(fmt.Sprintf("k%06d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	before := st.Stats()
	if err := st.DropKeyspace("big"); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	after := st.Stats()
	if after.FreePages < before.Pages/2 {
		t.Fatalf("drop freed %d of %d pages — expected the keyspace's pages on the free list", after.FreePages, before.Pages)
	}
	// A new keyspace of similar size must reuse those pages instead of
	// growing the file.
	kv2, _ := st.Keyspace("big2")
	for i := 0; i < 2000; i++ {
		if _, err := kv2.Put([]byte(fmt.Sprintf("k%06d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	final := st.Stats()
	if final.Pages > before.Pages+before.Pages/10 {
		t.Fatalf("file grew from %d to %d pages despite free list", before.Pages, final.Pages)
	}
}

func TestVacuumCompactsDeletedRows(t *testing.T) {
	st, err := Open(filepath.Join(t.TempDir(), "s.db"), Options{AutoVacuumRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	kv, _ := st.Keyspace("t")
	val := bytes.Repeat([]byte("x"), 256)
	for i := 0; i < 3000; i++ {
		if _, err := kv.Put([]byte(fmt.Sprintf("k%06d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	// Delete 90% of the rows: live bytes shrink but pages do not.
	for i := 0; i < 3000; i++ {
		if i%10 == 0 {
			continue
		}
		if _, err := kv.Delete([]byte(fmt.Sprintf("k%06d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	frag := st.Stats()
	if err := st.Vacuum(); err != nil {
		t.Fatal(err)
	}
	compact := st.Stats()
	if compact.Vacuums != 1 {
		t.Fatalf("vacuums = %d, want 1", compact.Vacuums)
	}
	inUse := compact.Pages - compact.FreePages
	fragUse := frag.Pages - frag.FreePages
	if inUse > fragUse/4 {
		t.Fatalf("vacuum left %d pages in use (was %d) — expected ~10%%", inUse, fragUse)
	}
	// Survivors still read back, through a reopen.
	check := func(kv KV) {
		for i := 0; i < 3000; i += 10 {
			v, ok, err := kv.Get([]byte(fmt.Sprintf("k%06d", i)))
			if err != nil || !ok || !bytes.Equal(v, val) {
				t.Fatalf("k%06d after vacuum: ok=%v err=%v", i, ok, err)
			}
		}
		if kv.Len() != 300 {
			t.Fatalf("len = %d, want 300", kv.Len())
		}
	}
	check(kv)
	path := filepath.Join(filepath.Dir(t.TempDir()), "")
	_ = path
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestVacuumSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.db")
	st, err := Open(path, Options{AutoVacuumRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	kv, _ := st.Keyspace("t")
	for i := 0; i < 500; i++ {
		if _, err := kv.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i += 2 {
		if _, err := kv.Delete([]byte(fmt.Sprintf("k%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	liveBefore := st.Stats().LiveBytes
	if err := st.Vacuum(); err != nil {
		t.Fatal(err)
	}
	if got := st.Stats().LiveBytes; got != liveBefore {
		t.Fatalf("vacuum changed live bytes %d -> %d", liveBefore, got)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st, err = Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	kv, _ = st.Keyspace("t")
	if kv.Len() != 250 {
		t.Fatalf("len after reopen = %d, want 250", kv.Len())
	}
	if got := st.Stats().LiveBytes; got != liveBefore {
		t.Fatalf("live bytes not persisted: %d, want %d", got, liveBefore)
	}
	for i := 1; i < 500; i += 2 {
		v, ok, err := kv.Get([]byte(fmt.Sprintf("k%04d", i)))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%04d = %q,%v,%v", i, v, ok, err)
		}
	}
}

func TestAutoVacuumTriggersOnFragmentation(t *testing.T) {
	st, err := Open(filepath.Join(t.TempDir(), "s.db"), Options{AutoVacuumRatio: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	kv, _ := st.Keyspace("t")
	val := bytes.Repeat([]byte("y"), 400)
	for i := 0; i < 4000; i++ {
		if _, err := kv.Put([]byte(fmt.Sprintf("k%06d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	if st.Stats().Vacuums != 0 {
		t.Fatal("auto-vacuum fired on a healthy store")
	}
	for i := 1; i < 4000; i++ {
		if _, err := kv.Delete([]byte(fmt.Sprintf("k%06d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	if st.Stats().Vacuums == 0 {
		t.Fatal("auto-vacuum did not fire after 99.9% of payload was deleted")
	}
	v, ok, err := kv.Get([]byte("k000000"))
	if err != nil || !ok || !bytes.Equal(v, val) {
		t.Fatalf("survivor lost after auto-vacuum: ok=%v err=%v", ok, err)
	}
}

// TestCompactionTracksLiveBytes drives a randomized workload, vacuums,
// and asserts the compacted footprint stays within a structural-
// overhead bound of the live payload — the end-to-end check that
// live-byte accounting, page freeing, and the rewrite agree.
func TestCompactionTracksLiveBytes(t *testing.T) {
	st, err := Open(filepath.Join(t.TempDir(), "s.db"), Options{AutoVacuumRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	kv, _ := st.Keyspace("t")
	rng := rand.New(rand.NewSource(97))
	model := map[string]int{}
	for step := 0; step < 12000; step++ {
		k := fmt.Sprintf("row%05d", rng.Intn(2500))
		if rng.Intn(3) < 2 {
			n := 20 + rng.Intn(300)
			v := bytes.Repeat([]byte{byte('a' + rng.Intn(26))}, n)
			if _, err := kv.Put([]byte(k), v); err != nil {
				t.Fatal(err)
			}
			model[k] = n
		} else {
			if _, err := kv.Delete([]byte(k)); err != nil {
				t.Fatal(err)
			}
			delete(model, k)
		}
		if step%2000 == 0 {
			if err := st.Commit(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	var live int64
	for k, n := range model {
		live += int64(len(k) + n)
	}
	if got := st.Stats().LiveBytes; got != live {
		t.Fatalf("live bytes = %d, model = %d", got, live)
	}
	if err := st.Vacuum(); err != nil {
		t.Fatal(err)
	}
	stats := st.Stats()
	footprint := int64(stats.Pages-stats.FreePages) * 4096
	// Per-entry structural overhead: ~12 bytes of cell/slot headers on
	// ~200-byte payloads, plus page slack from append-order packing.
	// 3× live + 64 KiB covers it with margin; the pre-vacuum file is
	// far larger.
	if footprint > 3*live+64<<10 {
		t.Fatalf("compacted footprint %d not within bound of live bytes %d", footprint, live)
	}
	for k, n := range model {
		v, ok, err := kv.Get([]byte(k))
		if err != nil || !ok || len(v) != n {
			t.Fatalf("%s after compaction: len=%d ok=%v err=%v", k, len(v), ok, err)
		}
	}
}
