package store

import "tatooine/internal/obs"

// Process-wide store metrics (internal/obs.Default).
var storeVacuumTotal = obs.Default.Counter("tat_store_vacuums_total",
	"Completed store vacuum passes (manual and auto-triggered).")
