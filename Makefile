GO ?= go

.PHONY: verify build test vet race bench

# Tier-1 gate: a missing-module (or any build/test) regression fails here.
verify: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchmem ./
