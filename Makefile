GO ?= go

.PHONY: verify build test vet race bench benchsmoke

# Tier-1 gate: a missing-module (or any build/test) regression fails here.
verify: vet build test benchsmoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchmem ./

# Compile and run every benchmark exactly once (no timing): a benchmark
# that stops building or panics fails verify instead of rotting silently.
benchsmoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
