GO ?= go
BENCHTIME ?= 1x

.PHONY: verify build test vet race bench benchsmoke fmtcheck obscheck

# Tier-1 gate: a missing-module (or any build/test) regression fails here.
verify: fmtcheck vet build test benchsmoke obscheck

# Observability hygiene: no printf logging outside cmd/, and a booted
# mediator's GET /metrics must scrape as valid Prometheus text.
obscheck:
	sh scripts/obs_vet.sh

# Fail on any file gofmt would rewrite (prints the offenders).
fmtcheck:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Record the perf trajectory: run the experiment benchmarks (root
# package, E1–E12 + serve/saturation/bind-join/pipelined) with
# allocation counts, including the storage-engine pair WarmBoot /
# PointLookupDisk, and write the results as test2json events to
# BENCH_9.json, so numbers are diffable across PRs. Raise BENCHTIME
# (e.g. BENCHTIME=2s) for stabler timings.
bench:
	$(GO) test -run '^$$' -bench . -benchtime $(BENCHTIME) -benchmem -json ./ > BENCH_9.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_9.json | sed 's/"Output":"//;s/\\t/ /g;s/\\n//' || true

# Compile and run every benchmark exactly once (no timing): a benchmark
# that stops building or panics fails verify instead of rotting silently.
# -benchmem surfaces allocation counts in CI logs, so an allocation
# regression in the reasoner (or any hot path) is visible at review.
benchsmoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem ./...
