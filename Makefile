GO ?= go
BENCHTIME ?= 1x

.PHONY: verify build test vet race bench benchsmoke boundedsmoke fmtcheck obscheck

# Tier-1 gate: a missing-module (or any build/test) regression fails here.
verify: fmtcheck vet build test benchsmoke boundedsmoke obscheck

# Bounded-memory smoke: seed an on-disk instance ~4x the 16 MiB
# page-cache budget and serve point lookups plus a spilling federated
# join. The benchmark asserts the resident-page gauge stays at or under
# the cap, the join spills, and GC-settled heap growth across the
# serving phase stays within 1.5x the budget — an OOM or an unbounded
# cache fails verify here.
boundedsmoke:
	$(GO) test -run '^$$' -bench '^BenchmarkBoundedMemory$$' -benchtime 1x ./

# Observability hygiene: no printf logging outside cmd/, and a booted
# mediator's GET /metrics must scrape as valid Prometheus text.
obscheck:
	sh scripts/obs_vet.sh

# Fail on any file gofmt would rewrite (prints the offenders).
fmtcheck:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Record the perf trajectory: run the experiment benchmarks (root
# package, E1–E12 + serve/saturation/bind-join/pipelined) with
# allocation counts, including the storage-engine pair WarmBoot /
# PointLookupDisk and the memory pair BoundedMemory (max-RSS +
# resident-page cap alongside ns/op) / WarmBootAllocs (startup
# allocations vs term count), and write the results as test2json events
# to BENCH_10.json, so numbers are diffable across PRs. Raise BENCHTIME
# (e.g. BENCHTIME=2s) for stabler timings.
bench:
	$(GO) test -run '^$$' -bench . -benchtime $(BENCHTIME) -benchmem -json ./ > BENCH_10.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_10.json | sed 's/"Output":"//;s/\\t/ /g;s/\\n//' || true

# Compile and run every benchmark exactly once (no timing): a benchmark
# that stops building or panics fails verify instead of rotting silently.
# -benchmem surfaces allocation counts in CI logs, so an allocation
# regression in the reasoner (or any hot path) is visible at review.
benchsmoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem ./...
